"""Segmented, checksummed write-ahead event journal for the serve tier.

Durability contract: every record the engine is about to apply is
appended (and, per the fsync policy, persisted) *before* the in-memory
state changes.  After a crash, replaying the journal's surviving suffix
over the newest snapshot reproduces the engine bit-for-bit — see
:meth:`repro.serve.engine.DetectionEngine.restore`.

On-disk layout (one directory):

- segments named ``wal-<first_seq, 16 digits>.log``, rotated once a
  segment exceeds ``segment_bytes``;
- each segment starts with the 8-byte magic ``RBWAL001``;
- each record is ``<u32 payload length> <u32 CRC32(payload)>``
  followed by the UTF-8 JSON payload.  The payload carries its own
  monotone ``"seq"`` so replay can both skip below a snapshot's offset
  and detect gaps.

Damage semantics (the part recovery leans on):

- a **torn tail** — the last segment ends in a truncated or
  checksum-failing record — is the expected signature of a crash
  mid-append.  The reader drops the torn record (and any bytes after
  it, which a torn write makes untrustworthy) and reports it; the
  writer truncates it away before appending again.
- damage anywhere *else* (a bad record followed by another segment, a
  sequence gap, a corrupt magic) means applied events are unrecoverable
  and raises :class:`~repro.store.errors.TornWalError` instead of
  silently skipping them.

fsync policies: ``"always"`` syncs every append (maximum durability,
slowest), ``"interval"`` syncs every ``fsync_interval`` records and on
rotation/close (bounded loss window), ``"off"`` leaves persistence to
the OS (crash-of-process safe via the atomic append ordering, power-loss
unsafe).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.store.errors import TornWalError
from repro.util.io import fsync_dir

__all__ = ["WalEndState", "WriteAheadLog", "read_wal", "wal_end_state"]

_MAGIC = b"RBWAL001"
_HEADER = struct.Struct("<II")
#: Sanity cap on one record's payload; a "length" above this is damage,
#: not a real record (the serve tier's micro-batches are ~KB scale).
_MAX_RECORD_BYTES = 1 << 30

_FSYNC_POLICIES = ("always", "interval", "off")


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"wal-{first_seq:016d}.log"


def _segment_first_seq(path: Path) -> int:
    return int(path.stem.split("-", 1)[1])


def _segments(directory: Path) -> list[Path]:
    return sorted(directory.glob("wal-*.log"))


@dataclass(frozen=True)
class WalEndState:
    """Where a journal directory's valid data ends (see :func:`wal_end_state`)."""

    #: Sequence number the next appended record will carry.
    next_seq: int
    #: Records that parsed and checksummed clean across all segments.
    valid_records: int
    #: Byte offset of the valid prefix inside the last segment (the
    #: truncation point for a writer reopening after a crash).
    last_segment_end: int
    #: Whether a torn tail was dropped to get there.
    torn_tail: bool


def _iter_segment(
    path: Path, *, is_last: bool, expect_first: int | None
) -> Iterator[tuple[int, dict, int]]:
    """Yield ``(seq, payload, end_offset)`` per valid record of one segment.

    *end_offset* is the file offset just past the record — the valid
    prefix length if this record turns out to be the last clean one.
    Damage in the last segment stops iteration (torn tail); damage
    elsewhere raises :class:`TornWalError`.
    """

    def damaged(detail: str) -> None:
        """Torn tail if this is the last segment; fatal damage otherwise."""
        if not is_last:
            raise TornWalError(
                f"{path.name}: {detail} in a non-final WAL segment"
            )

    data = path.read_bytes()
    if len(data) == 0 and is_last:
        # A crash between segment creation and the magic write.
        return
    if len(data) < len(_MAGIC) or data[: len(_MAGIC)] != _MAGIC:
        if len(data) < len(_MAGIC) and is_last:
            return
        raise TornWalError(f"{path.name}: bad WAL segment magic")
    offset = len(_MAGIC)
    expected = expect_first
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            damaged("truncated record header")
            return
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            damaged(f"implausible record length {length}")
            return
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            damaged("truncated record payload")
            return
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            damaged("record checksum mismatch")
            return
        try:
            record = json.loads(payload.decode("utf-8"))
            seq = int(record["seq"])
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            damaged("undecodable record payload")
            return
        if expected is not None and seq != expected:
            # A checksum-clean record carrying the wrong seq cannot come
            # from a torn append; refuse even at the tail.
            raise TornWalError(
                f"{path.name}: sequence gap (expected {expected}, found {seq})"
            )
        expected = seq + 1
        yield seq, record, end
        offset = end


def _read_all(
    directory: str | Path,
) -> Iterator[tuple[int, dict, Path, int]]:
    """Yield ``(seq, record, segment, end_offset)`` across all segments."""
    directory = Path(directory)
    segments = _segments(directory)
    expected: int | None = None
    for i, path in enumerate(segments):
        first = _segment_first_seq(path)
        if expected is not None and first != expected:
            raise TornWalError(
                f"{path.name}: segment starts at seq {first}, "
                f"expected {expected} (missing or reordered segment)"
            )
        expected = first
        for seq, record, end in _iter_segment(
            path, is_last=(i == len(segments) - 1), expect_first=first
        ):
            expected = seq + 1
            yield seq, record, path, end


def read_wal(
    directory: str | Path, start_seq: int = 0
) -> Iterator[tuple[int, dict]]:
    """Replay the journal: yield ``(seq, record)`` for every valid record
    with ``seq >= start_seq``, dropping a torn tail, raising
    :class:`TornWalError` on mid-journal damage."""
    for seq, record, _path, _end in _read_all(directory):
        if seq >= start_seq:
            yield seq, record


def wal_end_state(directory: str | Path) -> WalEndState:
    """Scan the journal and report where its valid data ends."""
    directory = Path(directory)
    segments = _segments(directory)
    next_seq = _segment_first_seq(segments[-1]) if segments else 0
    valid = 0
    end = len(_MAGIC) if segments and segments[-1].stat().st_size else 0
    last = segments[-1] if segments else None
    for seq, _record, path, offset in _read_all(directory):
        next_seq = seq + 1
        valid += 1
        if path == last:
            end = offset
    torn = last is not None and last.stat().st_size > max(end, 0)
    return WalEndState(
        next_seq=next_seq,
        valid_records=valid,
        last_segment_end=end,
        torn_tail=torn,
    )


class WriteAheadLog:
    """Appending side of the journal (one writer per directory).

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  An existing journal is
        continued: the valid tail is located, any torn final record is
        truncated away, and appends resume at the next sequence number.
    fsync:
        ``"always"`` / ``"interval"`` / ``"off"`` (see module docstring).
    fsync_interval:
        Records between syncs under the ``"interval"`` policy.
    segment_bytes:
        Rotation threshold; a segment is closed once it grows past this.

    Examples
    --------
    >>> import tempfile
    >>> d = tempfile.mkdtemp()
    >>> wal = WriteAheadLog(d, fsync="off")
    >>> wal.append({"events": [["a", "p", 0]], "cutoff": None})
    0
    >>> wal.append({"events": [], "cutoff": 10})
    1
    >>> wal.close()
    >>> [(seq, r["cutoff"]) for seq, r in read_wal(d)]
    [(0, None), (1, 10)]
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "interval",
        fsync_interval: int = 32,
        segment_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval <= 0:
            raise ValueError(f"fsync_interval must be > 0, got {fsync_interval}")
        if segment_bytes <= len(_MAGIC):
            raise ValueError(f"segment_bytes too small: {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_interval = int(fsync_interval)
        self.segment_bytes = int(segment_bytes)
        self._fh = None
        self._unsynced = 0

        end = wal_end_state(self.directory)
        self.next_seq = end.next_seq
        self.recovered_torn_tail = end.torn_tail
        segments = _segments(self.directory)
        if segments:
            last = segments[-1]
            if end.torn_tail:
                # Drop the torn record so the resumed tail stays readable.
                with open(last, "r+b") as fh:
                    fh.truncate(max(end.last_segment_end, 0))
            if last.stat().st_size < self.segment_bytes:
                self._fh = open(last, "ab")
                if last.stat().st_size == 0:
                    self._fh.write(_MAGIC)
                    self._fh.flush()

    # -- appends -----------------------------------------------------------
    def append(self, record: dict) -> int:
        """Journal one record (``"seq"`` is added here); returns its seq.

        The record is on disk (to the fsync policy's guarantee) when this
        returns — callers apply the corresponding state change *after*.
        """
        if "seq" in record:
            raise ValueError("record must not carry its own 'seq'")
        seq = self.next_seq
        payload = json.dumps(
            {"seq": seq, **record}, separators=(",", ":")
        ).encode("utf-8")
        fh = self._fh
        if fh is None:
            fh = self._open_segment(seq)
        fh.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        fh.write(payload)
        # Always hand the bytes to the OS: process death then costs at
        # most the torn tail, never a buffered batch.  fsync (power-loss
        # durability) is what the policy actually modulates.
        fh.flush()
        self.next_seq = seq + 1
        self._unsynced += 1
        if self.fsync == "always" or (
            self.fsync == "interval" and self._unsynced >= self.fsync_interval
        ):
            self.sync()
        if fh.tell() >= self.segment_bytes:
            self._rotate()
        return seq

    def sync(self) -> None:
        """Flush and ``fsync`` the open segment (no-op when nothing is open)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._unsynced = 0

    def _open_segment(self, first_seq: int):
        path = _segment_path(self.directory, first_seq)
        self._fh = open(path, "ab")
        if self._fh.tell() == 0:
            self._fh.write(_MAGIC)
            self._fh.flush()
        fsync_dir(self.directory)
        return self._fh

    def _rotate(self) -> None:
        self.sync()
        self._fh.close()
        self._fh = None  # next append opens wal-<next_seq>.log

    # -- maintenance -------------------------------------------------------
    def reset_to(self, seq: int) -> None:
        """Discard every segment and restart the journal at *seq*.

        Only valid when something else (a snapshot generation) already
        covers every surviving record — e.g. after a recovery in which
        the newest snapshot was ahead of a damaged journal.  Restarting
        at *seq* keeps the snapshot-offset convention intact without
        leaving a sequence gap for the next reader to trip over.
        """
        self.close()
        for path in _segments(self.directory):
            path.unlink()
        fsync_dir(self.directory)
        self.next_seq = int(seq)

    def prune_before(self, seq: int) -> int:
        """Delete segments whose records all precede *seq* (post-snapshot
        retention); returns the number of segments removed."""
        segments = _segments(self.directory)
        removed = 0
        for path, nxt in zip(segments, segments[1:]):
            if _segment_first_seq(nxt) <= seq and (
                self._fh is None or path.name != Path(self._fh.name).name
            ):
                path.unlink()
                removed += 1
        if removed:
            fsync_dir(self.directory)
        return removed

    def close(self) -> None:
        """Flush, sync, and release the open segment (idempotent)."""
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({str(self.directory)!r}, next_seq={self.next_seq}, "
            f"fsync={self.fsync})"
        )
