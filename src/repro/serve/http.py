"""Stdlib HTTP gateway over the (sharded) detection service.

:class:`HttpGateway` exposes the serving tier's query surface on a
``http.server.ThreadingHTTPServer`` — no runtime dependency beyond the
standard library:

======================  =====================================================
endpoint                answer
======================  =====================================================
``GET /topk?k=&by=``    global top-k triplets (k-way merged across shards)
``GET /user/<id>/score``  per-author live summary, routed to the owner shard
``GET /component/<id>``   the author's cross-shard component
``GET /status``         tier + per-shard status JSON
``GET /metrics``        Prometheus text exposition of the service registry
``GET /healthz``        ``ok`` when every shard is up, 503 otherwise
======================  =====================================================

Error mapping is typed: a bad parameter is 400, an unknown route 404, a
down shard (:class:`~repro.serve.shard.ShardUnavailableError` or a
degraded single supervisor) is **503 with a ``Retry-After`` hint** —
scoped to the dead shard's keyspace, the rest of the tier keeps
answering 200.  Every request lands in the shared
:class:`~repro.serve.metrics.ServiceMetrics` registry (per-endpoint
latency histograms + status-class counters), which is itself what
``/metrics`` renders — the gateway is self-observing.

The service only needs the query quartet ``top_k_triplets`` /
``user_score`` / ``component_of`` / ``status`` — a
:class:`~repro.serve.shard.ShardedDetectionService`, a single
:class:`~repro.serve.supervisor.ServeSupervisor`, or a plain
:class:`~repro.serve.service.DetectionService` all fit.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve.metrics import ServiceMetrics, prometheus_text
from repro.serve.shard import ShardUnavailableError
from repro.serve.supervisor import DegradedError

__all__ = ["HttpGateway"]

RETRY_AFTER_S = 1


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics registry's job

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        gateway = self.server.gateway  # type: ignore[attr-defined]
        gateway.handle(self)


class HttpGateway:
    """Serve the detection query surface over HTTP (see module docs).

    Parameters
    ----------
    service:
        Any object with ``top_k_triplets`` / ``user_score`` /
        ``component_of`` / ``status``.
    host / port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`address`).
    metrics:
        Registry for request counters and latency histograms; defaults
        to the service's own so one ``/metrics`` page shows both sides.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics: ServiceMetrics | None = None,
        namespace: str = "repro",
    ) -> None:
        self.service = service
        if metrics is None:
            metrics = getattr(service, "metrics", None) or ServiceMetrics()
        self.metrics = metrics
        self.namespace = namespace
        self._httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.gateway = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL of the bound gateway."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "HttpGateway":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="http-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, close the socket, join the serve thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "HttpGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request handling (called from server threads) ---------------------
    def handle(self, request: BaseHTTPRequestHandler) -> None:
        """Route one GET; all error mapping funnels through here."""
        split = urlsplit(request.path)
        parts = [unquote(p) for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        self.metrics.counter("http.requests").inc()
        try:
            endpoint, payload = self._dispatch(parts, query)
        except ShardUnavailableError as exc:
            self._send_json(
                request,
                503,
                {"error": str(exc), "shard": exc.shard_id},
                retry_after=True,
            )
        except DegradedError as exc:
            self._send_json(
                request, 503, {"error": str(exc)}, retry_after=True
            )
        except ValueError as exc:
            self._send_json(request, 400, {"error": str(exc)})
        except LookupError as exc:
            self._send_json(request, 404, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - boundary of the server
            self._send_json(
                request, 500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        else:
            if endpoint == "metrics":
                self._send_text(request, 200, payload)
            elif endpoint == "healthz" and payload != "ok":
                self._send_text(request, 503, payload, retry_after=True)
            elif endpoint == "healthz":
                self._send_text(request, 200, payload)
            else:
                self._send_json(request, 200, payload)

    def _dispatch(self, parts: list[str], query: dict) -> tuple[str, object]:
        if parts == ["topk"]:
            with self.metrics.time("http.latency.topk"):
                k = _int_param(query, "k", 10)
                by = _str_param(query, "by", "t")
                layer = _str_param(query, "layer", "")
                if layer:
                    try:
                        rows = self.service.top_k_triplets(
                            k, by=by, layer=layer
                        )
                    except TypeError:
                        raise ValueError(
                            "this deployment serves a single layer; "
                            "drop the layer= parameter"
                        ) from None
                    return "topk", {
                        "k": k,
                        "by": by,
                        "layer": layer,
                        "rows": rows,
                    }
                return "topk", {
                    "k": k,
                    "by": by,
                    "rows": self.service.top_k_triplets(k, by=by),
                }
        if len(parts) == 3 and parts[0] == "user" and parts[2] == "score":
            with self.metrics.time("http.latency.user"):
                return "user", self.service.user_score(parts[1])
        if len(parts) == 2 and parts[0] == "component":
            with self.metrics.time("http.latency.component"):
                members = self.service.component_of(parts[1])
                return "component", {
                    "author": parts[1],
                    "size": len(members),
                    "members": members,
                }
        if parts == ["status"]:
            with self.metrics.time("http.latency.status"):
                return "status", self.service.status()
        if parts == ["metrics"]:
            return "metrics", prometheus_text(
                self.metrics, namespace=self.namespace
            )
        if parts == ["healthz"]:
            healthy = True
            status = getattr(self.service, "status", None)
            if callable(status):
                healthy = bool(self.service.status().get("healthy", True))
            return "healthz", "ok" if healthy else "degraded"
        raise LookupError(f"no such endpoint: /{'/'.join(parts)}")

    # -- response helpers --------------------------------------------------
    def _send_json(
        self,
        request: BaseHTTPRequestHandler,
        code: int,
        payload: object,
        *,
        retry_after: bool = False,
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self._send(request, code, body, "application/json", retry_after)

    def _send_text(
        self,
        request: BaseHTTPRequestHandler,
        code: int,
        payload: str,
        *,
        retry_after: bool = False,
    ) -> None:
        self._send(
            request,
            code,
            str(payload).encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
            retry_after,
        )

    def _send(
        self,
        request: BaseHTTPRequestHandler,
        code: int,
        body: bytes,
        content_type: str,
        retry_after: bool,
    ) -> None:
        self.metrics.counter(f"http.status.{code // 100}xx").inc()
        try:
            request.send_response(code)
            request.send_header("Content-Type", content_type)
            request.send_header("Content-Length", str(len(body)))
            if retry_after:
                request.send_header("Retry-After", str(RETRY_AFTER_S))
            request.end_headers()
            request.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.metrics.counter("http.client_disconnects").inc()


def _int_param(query: dict, name: str, default: int) -> int:
    raw = query.get(name, [None])[0]
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"parameter {name!r} must be an integer, got {raw!r}")


def _str_param(query: dict, name: str, default: str) -> str:
    raw = query.get(name, [None])[0]
    return default if raw is None else str(raw)
