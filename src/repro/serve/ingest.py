"""Ingestion frontend: bounded queueing, micro-batching, admission control.

The online service sits between an unbounded event stream (a tailed
Pushshift ndjson dump, a platform firehose) and the detection engine,
whose per-batch update cost is real work.  Three pieces keep the system
stable under load:

- :class:`EventQueue` — a bounded buffer with an explicit overflow
  policy.  ``reject`` (the default) refuses new events when full —
  ``offer`` returning ``False`` is the **backpressure signal** a
  well-behaved producer reacts to by draining a batch before reading
  more.  ``drop-oldest`` / ``drop-newest`` instead shed load for
  producers that cannot pause (a live socket), trading exactness *of
  the admitted stream* for liveness; every shed event is counted.
- :class:`WatermarkTracker` — event-time progress tracking in the
  standard streaming idiom: the watermark trails the maximum observed
  event time by ``allowed_lateness`` seconds, and the live window is
  the ``window_horizon`` seconds behind the watermark.  An event older
  than the current eviction cutoff is *late beyond repair* (its window
  has already been evicted and answered for) and is dropped at
  admission, keeping the exactness contract well-defined: queries equal
  a batch run over exactly the admitted, unevicted comments.
- :func:`parse_comment_event` / :func:`iter_ndjson_events` — lenient
  Pushshift-record parsing reusing the :mod:`repro.graph.io` semantics
  (``errors="skip"`` + :class:`~repro.graph.io.IngestStats`): one
  corrupt line in a tailed dump costs one line, never the service.
"""

from __future__ import annotations

import json
import zlib
from collections import deque
from typing import IO, Iterable, Iterator

from repro.graph.io import IngestStats

__all__ = [
    "Event",
    "EventQueue",
    "WatermarkTracker",
    "parse_comment_event",
    "iter_ndjson_events",
    "page_shard_of",
    "shard_of",
]

#: One comment event: ``(author, page, created_utc)``.
Event = tuple[str, str, int]


def shard_of(author: str, n_shards: int) -> int:
    """The shard that owns *author*'s query keyspace.

    Stable across processes and Python runs (``zlib.crc32`` of the
    UTF-8 name — the builtin ``hash`` is salted per interpreter, which
    would scatter ownership across restarts).  Every layer of the
    sharded serving tier — child engines filtering their owned
    candidates, the gateway routing ``/user/<id>/score`` — must agree on
    this single function.
    """
    if n_shards <= 1:
        return 0
    data = str(author).encode("utf-8", "surrogatepass")
    return zlib.crc32(data) % int(n_shards)


def page_shard_of(page: str, n_shards: int) -> int:
    """The ingest shard that owns *page*'s timeline (page-hash mode).

    The page-partitioned ingest mode of the sharded tier routes every
    event to the shard its ``link_id`` hashes to, so each page's full
    timeline — and therefore each page's co-comment pair ledger — lives
    on exactly one shard (the locality Algorithm 1 exploits).  Same
    stable-hash rationale as :func:`shard_of`; the two partitions are
    independent axes (users for query ownership, pages for ingest).
    """
    if n_shards <= 1:
        return 0
    data = str(page).encode("utf-8", "surrogatepass")
    return zlib.crc32(data) % int(n_shards)


_POLICIES = ("reject", "drop-oldest", "drop-newest")


class EventQueue:
    """A bounded FIFO of events with an explicit overflow policy.

    Parameters
    ----------
    capacity:
        Maximum buffered events (> 0).
    policy:
        ``"reject"`` — a full queue refuses the offer (backpressure);
        ``"drop-oldest"`` — evict the head to admit the new event;
        ``"drop-newest"`` — discard the offered event.

    Examples
    --------
    >>> q = EventQueue(capacity=2, policy="drop-oldest")
    >>> [q.offer(("u", "p", t)) for t in (1, 2, 3)]
    [True, True, True]
    >>> [e[2] for e in q.drain(10)], q.dropped
    ([2, 3], 1)
    """

    def __init__(self, capacity: int, policy: str = "reject") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.capacity = int(capacity)
        self.policy = policy
        self._buf: deque[Event] = deque()
        self.offered = 0
        self.dropped = 0

    def offer(self, event: Event) -> bool:
        """Try to enqueue; ``False`` signals backpressure or a shed event.

        Under ``reject`` a ``False`` means the event was *not* admitted
        and the producer should drain before retrying; under the drop
        policies admission of the stream continues but the return value
        still reports whether *this* event survived.
        """
        self.offered += 1
        if len(self._buf) < self.capacity:
            self._buf.append(event)
            return True
        if self.policy == "reject":
            self.dropped += 1
            return False
        if self.policy == "drop-oldest":
            self._buf.popleft()
            self._buf.append(event)
            self.dropped += 1
            return True
        self.dropped += 1  # drop-newest
        return False

    def drain(self, max_events: int) -> list[Event]:
        """Dequeue up to *max_events* in FIFO order (the micro-batch)."""
        if max_events <= 0:
            return []
        out: list[Event] = []
        while self._buf and len(out) < max_events:
            out.append(self._buf.popleft())
        return out

    @property
    def depth(self) -> int:
        """Events currently buffered."""
        return len(self._buf)

    @property
    def is_full(self) -> bool:
        """Whether the next ``reject``-policy offer would bounce."""
        return len(self._buf) >= self.capacity

    def __len__(self) -> int:
        return len(self._buf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventQueue(depth={self.depth}/{self.capacity}, "
            f"policy={self.policy})"
        )


class WatermarkTracker:
    """Event-time progress: watermark and sliding-window eviction cutoff.

    The watermark asserts "no event older than this will be accepted";
    it trails the maximum observed event time by ``allowed_lateness``
    seconds and never moves backwards (out-of-order arrivals inside the
    lateness bound therefore land normally).  The live window is the
    ``window_horizon`` seconds up to the watermark: the eviction cutoff
    is ``watermark - window_horizon``, and both advance monotonically.

    Examples
    --------
    >>> wm = WatermarkTracker(window_horizon=100, allowed_lateness=10)
    >>> wm.observe(500)
    >>> wm.watermark, wm.evict_cutoff
    (490, 390)
    >>> wm.observe(400)          # out-of-order: watermark holds
    >>> wm.watermark
    490
    >>> wm.is_admissible(389), wm.is_admissible(390)
    (False, True)
    """

    def __init__(self, window_horizon: int, allowed_lateness: int = 0) -> None:
        if window_horizon <= 0:
            raise ValueError(
                f"window_horizon must be > 0, got {window_horizon}"
            )
        if allowed_lateness < 0:
            raise ValueError(
                f"allowed_lateness must be >= 0, got {allowed_lateness}"
            )
        self.window_horizon = int(window_horizon)
        self.allowed_lateness = int(allowed_lateness)
        self.max_event_time: int | None = None
        self._watermark: int | None = None

    def observe(self, event_time: int) -> None:
        """Fold one event's timestamp into the progress estimate."""
        t = int(event_time)
        if self.max_event_time is None or t > self.max_event_time:
            self.max_event_time = t
            wm = t - self.allowed_lateness
            if self._watermark is None or wm > self._watermark:
                self._watermark = wm

    @property
    def watermark(self) -> int | None:
        """Current watermark (``None`` before any observation)."""
        return self._watermark

    @property
    def evict_cutoff(self) -> int | None:
        """Comments older than this have left the live window."""
        if self._watermark is None:
            return None
        return self._watermark - self.window_horizon

    def is_admissible(self, event_time: int) -> bool:
        """Whether an event still falls inside the live window."""
        cutoff = self.evict_cutoff
        return cutoff is None or int(event_time) >= cutoff


def parse_comment_event(record: dict) -> Event | None:
    """Extract ``(author, link_id, created_utc)`` from a Pushshift record.

    Returns ``None`` for records missing a required field or carrying a
    non-integer timestamp — the same malformation classes
    :func:`repro.graph.io.btm_from_ndjson` skips in lenient mode.
    """
    try:
        return (record["author"], record["link_id"], int(record["created_utc"]))
    except (KeyError, TypeError, ValueError):
        return None


def iter_ndjson_events(
    lines: Iterable[str] | IO[str],
    stats: IngestStats | None = None,
) -> Iterator[Event]:
    """Stream events from ndjson lines, skipping malformed ones.

    Accepts any iterable of lines (an open file, ``sys.stdin``, a list),
    which is what lets the service tail a growing file or a pipe without
    the whole-file assumption of :func:`repro.graph.io.read_comments_ndjson`;
    the leniency semantics and :class:`~repro.graph.io.IngestStats`
    accounting match that reader.
    """
    stats = stats if stats is not None else IngestStats()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        stats.total_lines += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            stats.malformed += 1
            continue
        event = parse_comment_event(record)
        if event is None:
            stats.malformed += 1
            continue
        yield event
