"""Online multi-layer detection: one live engine per action layer.

:class:`MultiLayerDetectionEngine` keeps one
:class:`~repro.serve.engine.DetectionEngine` per action layer, all
sharing a single :class:`~repro.serve.metrics.ServiceMetrics` registry.
An incoming *record* (a Pushshift-style dict) fans out: each layer's
extractor turns it into that layer's ``(author, action_value, time)``
events, records performing no action on a layer bump the layer's skip
counter (lenient ingestion, exactly as the batch loaders do), and every
layer's incremental machinery runs untouched.

Per-layer cardinality is exported as gauges after every update —
``layer.<name>.live_events``, ``layer.<name>.ci_edges``,
``layer.<name>.thresholded_edges`` — so ``/metrics`` exposes how much
each behaviour currently weighs, and fused queries
(:meth:`fused_ranking`, :meth:`fused_components`) combine the per-layer
thresholded edges through the same
:func:`~repro.actions.fuse.fuse_edge_maps` rule the batch pipeline uses.

The query surface is :class:`~repro.serve.http.HttpGateway`-compatible:
``top_k_triplets`` / ``user_score`` / ``component_of`` take an optional
``layer=`` and default to the *primary* layer (``page`` when covered,
else the first sorted layer), so a gateway pointed at a multi-layer
engine behaves exactly like a single-layer deployment until a client
asks for ``?layer=``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.actions.base import ActionKey, resolve_layers
from repro.actions.fuse import FusedGraph, fuse_edge_maps
from repro.pipeline.config import PipelineConfig
from repro.pipeline.results import PipelineResult
from repro.serve.engine import BatchReport, DetectionEngine
from repro.serve.metrics import ServiceMetrics

__all__ = ["MultiLayerDetectionEngine"]


class MultiLayerDetectionEngine:
    """Live multi-layer detection over a stream of comment records.

    Parameters
    ----------
    config:
        Applied to every per-layer engine (window, cutoff, filter, …).
    layers:
        Layer names / :class:`~repro.actions.base.ActionKey` instances;
        defaults to ``config.layers`` or ``("page",)``.
    metrics:
        Shared registry (one is created when omitted); all per-layer
        engines and the gateway report into it.

    Examples
    --------
    >>> from repro.projection import TimeWindow
    >>> eng = MultiLayerDetectionEngine(
    ...     PipelineConfig(window=TimeWindow(0, 60), min_triangle_weight=1,
    ...                    min_component_size=2),
    ...     layers=["page", "link"])
    >>> _ = eng.ingest([
    ...     {"author": "a", "link_id": "p", "created_utc": 0,
    ...      "link": "https://x.example/1"},
    ...     {"author": "b", "link_id": "p", "created_utc": 10,
    ...      "link": "http://www.x.example/1/"},
    ... ])
    >>> eng.fused_ranking()
    [('a', 2.0), ('b', 2.0)]
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        layers: "Sequence[str | ActionKey] | None" = None,
        *,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        if layers is None:
            layers = self.config.layers or ("page",)
        self.keys = resolve_layers(list(layers))
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.engines: dict[str, DetectionEngine] = {
            key.name: DetectionEngine(self.config, metrics=self.metrics)
            for key in self.keys
        }
        self.primary = (
            "page" if "page" in self.engines else self.keys[0].name
        )

    # -- updates ---------------------------------------------------------------
    def ingest(self, records: Iterable[Mapping]) -> dict[str, BatchReport]:
        """Fan one micro-batch of comment records out to every layer.

        Each record must carry ``author`` and ``created_utc``; a record
        that performs no action on a layer is *skipped on that layer*
        and counted in ``layer.<name>.skipped_records`` — never an
        error (lenient ingestion).
        """
        batch = list(records)
        per_layer: dict[str, list[tuple[str, str, int]]] = {
            key.name: [] for key in self.keys
        }
        for rec in batch:
            for key in self.keys:
                events = key.triples(rec)
                if not events:
                    self.metrics.counter(
                        f"layer.{key.name}.skipped_records"
                    ).inc()
                    continue
                per_layer[key.name].extend(events)
        reports = {
            key.name: self.engines[key.name].ingest(per_layer[key.name])
            for key in self.keys
        }
        self._update_gauges()
        return reports

    def advance(self, cutoff: int) -> dict[str, BatchReport]:
        """Advance every layer's sliding window to *cutoff*."""
        reports = {
            key.name: self.engines[key.name].advance(cutoff)
            for key in self.keys
        }
        self._update_gauges()
        return reports

    def _update_gauges(self) -> None:
        """Refresh the per-layer cardinality gauges (satellite metrics)."""
        for name, engine in self.engines.items():
            status = engine.status()
            self.metrics.gauge(f"layer.{name}.live_events").set(
                status["live_comments"]
            )
            self.metrics.gauge(f"layer.{name}.ci_edges").set(
                status["ci_edges"]
            )
            self.metrics.gauge(f"layer.{name}.thresholded_edges").set(
                status["thresholded_edges"]
            )

    # -- per-layer queries -------------------------------------------------------
    def _engine(self, layer: "str | None") -> DetectionEngine:
        name = self.primary if layer is None else str(layer)
        engine = self.engines.get(name)
        if engine is None:
            raise ValueError(
                f"layer {name!r} is not served "
                f"(covered: {', '.join(self.layer_names())})"
            )
        return engine

    def layer_names(self) -> list[str]:
        """Covered layers, sorted."""
        return sorted(self.engines)

    def top_k_triplets(
        self, k: int, by: str = "t", layer: "str | None" = None
    ) -> list[dict]:
        """Top-k triplets on one layer (default: the primary layer)."""
        return self._engine(layer).top_k_triplets(k, by=by)

    def user_score(self, author: str, layer: "str | None" = None) -> dict:
        """Per-author live summary on one layer, plus the fused score."""
        row = dict(self._engine(layer).user_score(author))
        row["fused_score"] = self.fused_graph().user_scores().get(
            author, 0.0
        )
        return row

    def component_of(
        self, author: str, layer: "str | None" = None
    ) -> list[str]:
        """The author's component on one layer (see the fused variant)."""
        return self._engine(layer).component_of(author)

    def snapshot(self, layer: "str | None" = None) -> PipelineResult:
        """Batch-compatible :class:`PipelineResult` for one layer."""
        result = self._engine(layer).snapshot()
        result.layer = self.primary if layer is None else str(layer)
        return result

    # -- fused queries -----------------------------------------------------------
    def fused_graph(self) -> FusedGraph:
        """The current weighted union of per-layer thresholded edges."""
        cutoff = self.config.min_triangle_weight
        edge_maps = {
            name: {
                pair: w
                for pair, w in engine.ci_edges().items()
                if w >= cutoff
            }
            for name, engine in self.engines.items()
        }
        return fuse_edge_maps(
            edge_maps, weights=dict(self.config.layer_weights) or None
        )

    def fused_ranking(self, k: "int | None" = None) -> list[tuple[str, float]]:
        """Authors by fused multi-layer score (optionally top *k*)."""
        ranking = self.fused_graph().ranking()
        return ranking if k is None else ranking[: max(int(k), 0)]

    def fused_components(self) -> list[list[str]]:
        """Components of the fused graph ≥ ``min_component_size``."""
        return self.fused_graph().components(
            min_size=self.config.min_component_size
        )

    def fused_component_of(self, author: str) -> list[str]:
        """The author's component in the *fused* union graph."""
        for comp in self.fused_graph().components(min_size=1):
            if author in comp:
                return comp
        return []

    # -- status ------------------------------------------------------------------
    def status(self) -> dict:
        """Tier-style status: per-layer engine summaries + fused counts."""
        fused = self.fused_graph()
        layers = {}
        for name in self.layer_names():
            status = self.engines[name].status()
            status.pop("metrics", None)  # shared registry, reported once
            layers[name] = status
        return {
            "layers": layers,
            "primary": self.primary,
            "fused_edges": fused.n_edges,
            "fused_components": len(fused.components(
                min_size=self.config.min_component_size
            )),
            "metrics": self.metrics.to_dict(),
        }
