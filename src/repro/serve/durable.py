"""Crash-safe :class:`DetectionService`: write-ahead journal + snapshots.

:class:`DurableDetectionService` keeps the exact event loop of its base
class — same queue, same watermark, same tick — and adds durability at
the one seam the base class exposes for it
(:meth:`~repro.serve.service.DetectionService._pre_apply`): every tick's
``(batch, cutoff)`` pair is appended to the write-ahead journal *before*
the engine mutates.  Replaying the journal therefore performs the exact
ingest/advance interleaving of the original run, which is what makes
recovery bit-identical rather than merely approximate.

Periodically (every ``snapshot_every`` journal records) the engine state
is captured into a new snapshot generation whose number equals the
journal offset, and journal segments no retained generation needs are
pruned.  On construction, if the store directory already holds state,
the service recovers from it (newest valid snapshot + journal suffix)
and exposes the :class:`~repro.store.RecoveryReport` as
``self.recovery``.

Durability / loss model (see ``docs/fault_model.md``):

- ``fsync="always"`` — every record reaches the disk before the engine
  applies it; no committed tick is lost even to power failure.
- ``fsync="interval"`` — records are *flushed* to the OS per append (a
  killed process loses nothing) and fsynced every ``fsync_interval``
  records (a power loss can cost at most that many ticks).
- ``fsync="off"`` — flush-only; same process-crash safety, no
  power-loss bound until the next snapshot.
"""

from __future__ import annotations

from pathlib import Path

from repro.pipeline.config import PipelineConfig
from repro.serve.ingest import Event
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import DetectionService
from repro.serve.wal import WriteAheadLog
from repro.store import DurableStore, RecoveryReport, engine_state_arrays

__all__ = ["DurableDetectionService"]


class DurableDetectionService(DetectionService):
    """A :class:`DetectionService` that survives being killed at any instant.

    Parameters (beyond the base class)
    ----------------------------------
    directory:
        Root of the durable store (``wal/`` + ``snapshots/`` inside).
    fsync / fsync_interval:
        Journal durability policy — see :class:`~repro.serve.wal.WriteAheadLog`.
    snapshot_every:
        Journal records between snapshot generations.  Smaller = faster
        recovery, more write amplification.
    keep_snapshots:
        Snapshot generations retained for corruption fallback.
    wal_segment_bytes:
        Journal segment rotation threshold.
    snapshot_on_close:
        Write a final generation in :meth:`close` so the next start
        replays an empty suffix.

    Examples
    --------
    >>> import tempfile
    >>> from repro.pipeline.config import PipelineConfig
    >>> from repro.projection import TimeWindow
    >>> cfg = PipelineConfig(window=TimeWindow(0, 60), min_triangle_weight=1,
    ...                      min_component_size=2)
    >>> with tempfile.TemporaryDirectory() as d:
    ...     svc = DurableDetectionService(cfg, directory=d, window_horizon=100)
    ...     for t in (0, 10, 20):
    ...         _ = svc.submit(("u%d" % t, "p", t))
    ...     _ = svc.tick()
    ...     svc.close()
    ...     svc2 = DurableDetectionService(cfg, directory=d, window_horizon=100)
    ...     n = svc2.engine.n_triangles
    ...     svc2.close()
    >>> n
    1
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        directory: str | Path,
        fsync: str = "interval",
        fsync_interval: int = 32,
        snapshot_every: int = 256,
        keep_snapshots: int = 3,
        wal_segment_bytes: int = 4 * 1024 * 1024,
        snapshot_on_close: bool = True,
        metrics: ServiceMetrics | None = None,
        **service_kwargs,
    ) -> None:
        super().__init__(config, metrics=metrics, **service_kwargs)
        self.store = DurableStore(directory, keep_snapshots=keep_snapshots)
        self.snapshot_every = int(snapshot_every)
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.snapshot_on_close = bool(snapshot_on_close)
        self._closed = False

        if self.store.has_state():
            engine, report = self.store.recover_engine(
                self.engine.config, metrics=self.metrics
            )
            self.engine = engine
            self.recovery: RecoveryReport = report
            if report.max_event_time is not None:
                self.watermark.observe(report.max_event_time)
        else:
            self.recovery = RecoveryReport()
        #: Cumulative events contained in journaled records since stream
        #: start — the durable stream position a supervisor resumes from.
        self.events_journaled = self.recovery.events_durable
        self.metrics.counter("durable.recoveries").inc()
        self.metrics.counter("durable.records_replayed").inc(
            self.recovery.records_replayed
        )

        self.wal = self.store.open_wal(
            fsync=fsync,
            fsync_interval=fsync_interval,
            segment_bytes=wal_segment_bytes,
        )
        if self.wal.next_seq < self.recovery.applied_seq:
            # The newest snapshot is ahead of every surviving journal
            # record (damaged / externally truncated journal).  The
            # snapshot is authoritative; restart the journal at its
            # offset so sequence numbers stay contiguous for the reader.
            self.wal.reset_to(self.recovery.applied_seq)
        self._last_snapshot_seq = (
            max(self.store.snapshots.generations(), default=None)
        )
        self._records_since_snapshot = 0

    # -- durability hooks --------------------------------------------------
    def _pre_apply(self, batch: list[Event], cutoff: int | None) -> None:
        """Journal the tick before the engine sees it (write-ahead order)."""
        if not batch and cutoff is None:
            return  # idle tick: no state change, nothing to journal
        acc = self.events_journaled + len(batch)
        self.wal.append(
            {
                "events": [list(e) for e in batch],
                "cutoff": cutoff,
                "wm": self.watermark.max_event_time,
                "acc": acc,
            }
        )
        self.events_journaled = acc
        self._records_since_snapshot += 1

    def tick(self):
        report = super().tick()
        if self._records_since_snapshot >= self.snapshot_every:
            self.snapshot_now()
        return report

    def snapshot_now(self) -> int:
        """Capture the current engine state as a new generation.

        The generation number is ``wal.next_seq`` — the first journal
        record the snapshot does *not* reflect — and journal segments
        below the oldest retained generation are pruned afterwards.
        Returns the generation number.
        """
        with self.metrics.time("durable.snapshot"):
            self.wal.sync()
            seq = self.wal.next_seq
            arrays, meta = engine_state_arrays(self.engine)
            meta["max_event_time"] = self.watermark.max_event_time
            meta["events_journaled"] = self.events_journaled
            self.store.snapshots.save(seq, arrays, meta)
            generations = self.store.snapshots.generations()
            if generations:
                self.wal.prune_before(min(generations))
        self._last_snapshot_seq = seq
        self._records_since_snapshot = 0
        self.metrics.counter("durable.snapshots").inc()
        self.metrics.gauge("durable.snapshot_seq").set(seq)
        return seq

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Flush and close the journal; snapshot first when configured."""
        if self._closed:
            return
        self._closed = True
        if self.snapshot_on_close and (
            self._records_since_snapshot or self._last_snapshot_seq is None
        ):
            self.snapshot_now()
        else:
            self.wal.sync()
        self.wal.close()

    def __enter__(self) -> "DurableDetectionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------
    def status(self) -> dict:
        status = super().status()
        status.update(
            durable_dir=str(self.store.directory),
            wal_seq=self.wal.next_seq,
            wal_fsync=self.wal.fsync,
            snapshot_seq=self._last_snapshot_seq,
            snapshot_every=self.snapshot_every,
            records_since_snapshot=self._records_since_snapshot,
            recovery=self.recovery.describe(),
            recovered_records=self.recovery.records_replayed,
            recovered_events=self.recovery.events_replayed,
        )
        return status
