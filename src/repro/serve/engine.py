"""The stateful online detection engine (sliding window, dirty-set rescoring).

:class:`DetectionEngine` keeps the paper's three-step pipeline *alive*
over a sliding window of comments instead of re-running it per batch:

- **Step 1 stays per-page incremental** — appends and time-based
  evictions route through
  :class:`~repro.projection.incremental.IncrementalProjector`, which
  reprojects only the touched pages.  The engine folds each touched
  page's before/after ``(x, y)`` pair sets into running ``w'`` edge
  weights and the ``P'`` ledger, so the common interaction graph is
  never rebuilt from scratch.
- **Steps 2–3 become dirty-set maintenance** — the pairs whose ``w'``
  actually changed in a batch (the *dirty edges*) are the only places
  the thresholded graph, and therefore its triangle set, can change.
  Triangles incident to a dirty edge are removed/added/re-weighted via
  common-neighbor closure on the thresholded adjacency; scores
  (``T`` of eq. 7, ``w_xyz``/``C`` of eqs. 2–4) are recomputed only for
  triangles touching a dirty edge or a *dirty user* (one whose ``P'``
  or live page set changed).  Per-batch cost is proportional to the
  dirty set, not to the live graph.

**Exactness contract.**  After *any* interleaving of appends,
out-of-order arrivals, and evictions, every query answer equals a
from-scratch :class:`~repro.pipeline.framework.CoordinationPipeline`
run over exactly the live (admitted, unevicted) comments.  The
contract is enforced by :func:`repro.verify.online.run_online_parity`
and the randomized property tests; nothing here is approximate.

Admission mirrors the watermark semantics of
:class:`~repro.serve.ingest.WatermarkTracker`: once
:meth:`DetectionEngine.advance` has moved the eviction cutoff, an
arriving comment older than the cutoff is dropped (counted as late) —
its window has already been evicted and answered for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.filters import FilterReport
from repro.hypergraph.triplets import TripletMetrics
from repro.kernels import normalized_score_scalar
from repro.pipeline.config import PipelineConfig
from repro.pipeline.framework import component_reports
from repro.pipeline.results import PipelineResult
from repro.projection.incremental import IncrementalProjector
from repro.serve.metrics import ServiceMetrics
from repro.tripoll.survey import TriangleSet

__all__ = ["BatchReport", "DetectionEngine"]


@dataclass(frozen=True)
class BatchReport:
    """What one engine update (ingest batch and/or window advance) did.

    The dirty-set sizes are the engine's own incrementality evidence:
    the serve benchmark asserts per-batch update cost tracks
    ``dirty_edges`` / ``rescored_triangles``, not the live graph size.
    """

    n_appended: int
    n_filtered: int
    n_late_dropped: int
    n_evicted: int
    touched_pages: int
    dirty_edges: int
    dirty_users: int
    triangles_added: int
    triangles_removed: int
    rescored_triangles: int

    @property
    def idle(self) -> bool:
        """Whether the update changed nothing at all."""
        return self.touched_pages == 0 and self.n_late_dropped == 0


class _TriScore:
    """Mutable per-triangle record: the three ``w'`` weights + scores."""

    __slots__ = ("w_ab", "w_ac", "w_bc", "t", "w_xyz", "p_sum", "c")

    def __init__(self, w_ab: int, w_ac: int, w_bc: int) -> None:
        self.w_ab = w_ab
        self.w_ac = w_ac
        self.w_bc = w_bc
        self.t = 0.0
        self.w_xyz = 0
        self.p_sum = 0
        self.c = 0.0


class DetectionEngine:
    """Maintains live detection state and answers queries over it.

    Parameters
    ----------
    config:
        The same :class:`~repro.pipeline.config.PipelineConfig` a batch
        run would use — window, cutoff, author filter, component floor,
        ``compute_hypergraph`` — so the oracle for any engine state is
        simply ``CoordinationPipeline(config).run(live_corpus)``.
    metrics:
        Optional shared :class:`~repro.serve.metrics.ServiceMetrics`
        registry (one is created when omitted).
    auto_compact:
        When true (default), the projector's interners are compacted —
        and the engine rebuilt from the compacted state — whenever the
        interned id space exceeds ``compact_ratio`` × the live
        population, keeping steady-state memory proportional to the live
        window under churn.
    compact_ratio / compact_min:
        Compaction triggers when ``interned > max(compact_min,
        compact_ratio * live)`` for users or pages.

    Examples
    --------
    >>> from repro.projection import TimeWindow
    >>> eng = DetectionEngine(PipelineConfig(
    ...     window=TimeWindow(0, 60), min_triangle_weight=1,
    ...     min_component_size=2, compute_hypergraph=True))
    >>> _ = eng.ingest([("a", "p", 0), ("b", "p", 10), ("c", "p", 20)])
    >>> eng.top_k_triplets(1)[0]["authors"]
    ('a', 'b', 'c')
    >>> _ = eng.advance(1_000)              # slide the window past p
    >>> eng.n_live_comments, eng.top_k_triplets(1)
    (0, [])
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        metrics: ServiceMetrics | None = None,
        auto_compact: bool = True,
        compact_ratio: float = 4.0,
        compact_min: int = 1024,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.auto_compact = bool(auto_compact)
        self.compact_ratio = float(compact_ratio)
        self.compact_min = int(compact_min)
        self.proj = IncrementalProjector(
            self.config.window, pair_batch=self.config.pair_batch
        )
        self.evict_cutoff: int | None = None
        # Running CI state: accumulated edge weights w' and the P' ledger
        # (nonzero entries only), both keyed by dense user ids.
        self._ci: dict[tuple[int, int], int] = {}
        self._pprime: dict[int, int] = {}
        # Live incidence: user id -> {page id: live comment count}.
        self._user_pages: dict[int, dict[int, int]] = {}
        # Thresholded adjacency and the triangle store over it.
        self._adj: dict[int, dict[int, int]] = {}
        self._tris: dict[tuple[int, int, int], _TriScore] = {}
        self._tri_by_user: dict[int, set[tuple[int, int, int]]] = {}
        # Author-filter bookkeeping (decision cache + report data).
        self._filter_cache: dict[str, bool] = {}
        self._filtered_names: dict[str, None] = {}
        self._filtered_comments = 0

    @classmethod
    def restore(
        cls,
        store,
        config: PipelineConfig | None = None,
        *,
        metrics: ServiceMetrics | None = None,
    ):
        """Rebuild an engine from a :class:`~repro.store.DurableStore`.

        Loads the newest snapshot generation that validates (falling back
        to older generations on corruption) and replays the write-ahead
        journal's suffix, so the returned engine is bit-identical to one
        that never crashed — the contract the recovery chaos matrix
        (:func:`repro.verify.chaos.run_recovery_chaos`) enforces.
        Returns ``(engine, recovery_report)``.
        """
        config = config if config is not None else PipelineConfig()
        return store.recover_engine(config, metrics=metrics)

    # -- updates ---------------------------------------------------------------
    def ingest(self, events) -> BatchReport:
        """Apply one micro-batch of ``(author, page, created_utc)`` events.

        Events by filtered authors and events older than the current
        eviction cutoff (late beyond the watermark) are dropped and
        counted; everything else becomes part of the live corpus.
        """
        accepted: list[tuple] = []
        n_filtered = 0
        n_late = 0
        for author, page, created in events:
            created = int(created)
            if self._is_filtered(author):
                n_filtered += 1
                continue
            if self.evict_cutoff is not None and created < self.evict_cutoff:
                n_late += 1
                continue
            accepted.append((author, page, created))
        self._filtered_comments += n_filtered
        report = self._apply(accepted, None, n_filtered, n_late)
        self._maybe_compact()
        return report

    def advance(self, cutoff: int) -> BatchReport:
        """Advance the sliding window: evict comments older than *cutoff*.

        The cutoff is clamped to be monotone (a stale watermark never
        un-evicts) and becomes the admission floor for future arrivals.
        """
        cutoff = int(cutoff)
        if self.evict_cutoff is not None:
            cutoff = max(cutoff, self.evict_cutoff)
        self.evict_cutoff = cutoff
        report = self._apply([], cutoff, 0, 0)
        self._maybe_compact()
        return report

    def _is_filtered(self, author) -> bool:
        if not isinstance(author, str):
            return False
        verdict = self._filter_cache.get(author)
        if verdict is None:
            verdict = self.config.author_filter.matches(author)
            self._filter_cache[author] = verdict
            if verdict:
                self._filtered_names[author] = None
        return verdict

    # -- the dirty-set update ---------------------------------------------------
    def _apply(
        self,
        appends: list[tuple],
        cutoff: int | None,
        n_filtered: int,
        n_late: int,
    ) -> BatchReport:
        with self.metrics.time("engine.update"):
            proj = self.proj
            # Snapshot the pre-batch pair sets of every page this update
            # can touch (append targets now; eviction candidates after
            # the append, which cannot un-age an existing comment).
            old_pairs: dict[int, set[tuple[int, int]]] = {}
            for _a, page, _t in appends:
                pid = proj.page_names.intern(page)
                if pid not in old_pairs:
                    old_pairs[pid] = self._pairs_of(pid)
            if appends:
                proj.add_comments(appends)
            n_evicted = 0
            evicted_rows: tuple[tuple[int, int], ...] = ()
            if cutoff is not None:
                for pid in proj.pages_with_comments_before(cutoff):
                    if pid not in old_pairs:
                        old_pairs[pid] = self._pairs_of(pid)
                ev = proj.evict_before(cutoff)
                n_evicted = ev.n_evicted
                evicted_rows = ev.evicted

            # Net w' / P' deltas over the touched pages.
            edge_delta: dict[tuple[int, int], int] = {}
            pprime_delta: dict[int, int] = {}
            for pid, old in old_pairs.items():
                new = self._pairs_of(pid)
                if new == old:
                    continue
                old_users: set[int] = set()
                new_users: set[int] = set()
                for pair in old - new:
                    edge_delta[pair] = edge_delta.get(pair, 0) - 1
                for pair in new - old:
                    edge_delta[pair] = edge_delta.get(pair, 0) + 1
                for a, b in old:
                    old_users.add(a)
                    old_users.add(b)
                for a, b in new:
                    new_users.add(a)
                    new_users.add(b)
                for u in old_users - new_users:
                    pprime_delta[u] = pprime_delta.get(u, 0) - 1
                for u in new_users - old_users:
                    pprime_delta[u] = pprime_delta.get(u, 0) + 1

            dirty_users: set[int] = set()
            for u, delta in pprime_delta.items():
                if delta == 0:
                    continue
                new_val = self._pprime.get(u, 0) + delta
                if new_val:
                    self._pprime[u] = new_val
                else:
                    self._pprime.pop(u, None)
                dirty_users.add(u)

            # Live incidence maintenance (feeds p_x and w_xyz); a user
            # whose distinct-page set changed is dirty for C/T rescoring.
            for author, page, _t in appends:
                uid = proj.user_names.id_of(author)
                pid = proj.page_names.id_of(page)
                pages = self._user_pages.setdefault(uid, {})
                pages[pid] = pages.get(pid, 0) + 1
                if pages[pid] == 1:
                    dirty_users.add(uid)
            for uid, pid in evicted_rows:
                pages = self._user_pages[uid]
                pages[pid] -= 1
                if pages[pid] == 0:
                    del pages[pid]
                    dirty_users.add(uid)
                    if not pages:
                        del self._user_pages[uid]

            # Thresholded-graph and triangle maintenance on dirty edges.
            self._fold_edge_deltas(edge_delta)
            dirty_edges = [
                pair for pair, delta in sorted(edge_delta.items()) if delta
            ]
            added, removed, rescore = self._update_triangles(dirty_edges)
            for key in self._tris:
                if key in rescore:
                    continue
                if (
                    key[0] in dirty_users
                    or key[1] in dirty_users
                    or key[2] in dirty_users
                ):
                    rescore.add(key)
            self._rescore(rescore)

        m = self.metrics
        m.counter("engine.batches").inc()
        m.counter("engine.events_ingested").inc(len(appends))
        m.counter("engine.events_filtered").inc(n_filtered)
        m.counter("engine.events_late_dropped").inc(n_late)
        m.counter("engine.comments_evicted").inc(n_evicted)
        m.counter("engine.dirty_edges").inc(len(dirty_edges))
        m.counter("engine.dirty_users").inc(len(dirty_users))
        m.counter("engine.triangles_added").inc(added)
        m.counter("engine.triangles_removed").inc(removed)
        m.counter("engine.rescored_triangles").inc(len(rescore))
        m.gauge("engine.last_dirty_edges").set(len(dirty_edges))
        m.gauge("engine.last_rescored_triangles").set(len(rescore))
        m.gauge("engine.live_comments").set(self.n_live_comments)
        m.gauge("engine.live_pages").set(self.proj.n_pages)
        m.gauge("engine.ci_edges").set(len(self._ci))
        m.gauge("engine.thresholded_edges").set(
            sum(len(nbrs) for nbrs in self._adj.values()) // 2
        )
        m.gauge("engine.triangles").set(len(self._tris))
        if self.evict_cutoff is not None:
            m.gauge("engine.evict_cutoff").set(self.evict_cutoff)
        return BatchReport(
            n_appended=len(appends),
            n_filtered=n_filtered,
            n_late_dropped=n_late,
            n_evicted=n_evicted,
            touched_pages=len(old_pairs),
            dirty_edges=len(dirty_edges),
            dirty_users=len(dirty_users),
            triangles_added=added,
            triangles_removed=removed,
            rescored_triangles=len(rescore),
        )

    def _pairs_of(self, pid: int) -> set[tuple[int, int]]:
        triples = self.proj.triples_of(pid)
        if triples is None:
            return set()
        a, b = triples
        return set(zip(a.tolist(), b.tolist()))

    def _update_triangles(
        self, dirty_edges: list[tuple[int, int]]
    ) -> tuple[int, int, set[tuple[int, int, int]]]:
        """Fold dirty-edge deltas into ``w'``, the thresholded adjacency,
        and the triangle store; returns (added, removed, keys to rescore).
        """
        cutoff = self.config.min_triangle_weight
        adj = self._adj
        added = removed = 0
        rescore: set[tuple[int, int, int]] = set()
        for u, v in dirty_edges:
            new_w = self._ci.get((u, v), 0)
            was_above = v in adj.get(u, ())
            if new_w >= cutoff:
                if was_above:
                    adj[u][v] = new_w
                    adj[v][u] = new_w
                    for key in self._tris_with_edge(u, v):
                        self._set_tri_weight(key, u, v, new_w)
                        rescore.add(key)
                else:
                    nbrs_u = adj.setdefault(u, {})
                    nbrs_v = adj.setdefault(v, {})
                    common = nbrs_u.keys() & nbrs_v.keys()
                    nbrs_u[v] = new_w
                    nbrs_v[u] = new_w
                    for w in common:
                        key = tuple(sorted((u, v, w)))
                        if key in self._tris:
                            # Another dirty edge of the same new triangle
                            # already closed it this batch.
                            self._set_tri_weight(key, u, v, new_w)
                            rescore.add(key)
                            continue
                        tri = _TriScore(0, 0, 0)
                        self._tris[key] = tri
                        self._set_tri_weight(key, u, v, new_w)
                        self._set_tri_weight(key, u, w, nbrs_u[w])
                        self._set_tri_weight(key, v, w, nbrs_v[w])
                        for vertex in key:
                            self._tri_by_user.setdefault(vertex, set()).add(key)
                        rescore.add(key)
                        added += 1
            elif was_above:
                del adj[u][v]
                del adj[v][u]
                if not adj[u]:
                    del adj[u]
                if not adj[v]:
                    del adj[v]
                for key in self._tris_with_edge(u, v):
                    del self._tris[key]
                    rescore.discard(key)
                    for vertex in key:
                        owners = self._tri_by_user[vertex]
                        owners.discard(key)
                        if not owners:
                            del self._tri_by_user[vertex]
                    removed += 1
        return added, removed, rescore

    def _tris_with_edge(self, u: int, v: int) -> list[tuple[int, int, int]]:
        a = self._tri_by_user.get(u)
        b = self._tri_by_user.get(v)
        if not a or not b:
            return []
        return list(a & b)

    def _set_tri_weight(
        self, key: tuple[int, int, int], u: int, v: int, w: int
    ) -> None:
        tri = self._tris[key]
        lo, hi = (u, v) if u < v else (v, u)
        a, b, c = key
        if (lo, hi) == (a, b):
            tri.w_ab = w
        elif (lo, hi) == (a, c):
            tri.w_ac = w
        else:
            tri.w_bc = w

    def _rescore(self, keys: set[tuple[int, int, int]]) -> None:
        pprime = self._pprime
        user_pages = self._user_pages
        hyper = self.config.compute_hypergraph
        for key in keys:
            tri = self._tris.get(key)
            if tri is None:
                continue
            a, b, c = key
            min_w = min(tri.w_ab, tri.w_ac, tri.w_bc)
            denom = pprime.get(a, 0) + pprime.get(b, 0) + pprime.get(c, 0)
            # Same kernel as the batch path, so online and batch scores
            # are bit-for-bit identical by construction.
            tri.t = normalized_score_scalar(min_w, denom)
            if hyper:
                pa = user_pages.get(a, {})
                pb = user_pages.get(b, {})
                pc = user_pages.get(c, {})
                sets = sorted((pa, pb, pc), key=len)
                small = sets[0].keys() & sets[1].keys()
                tri.w_xyz = (
                    len(small & sets[2].keys()) if small else 0
                )
                tri.p_sum = len(pa) + len(pb) + len(pc)
                tri.c = normalized_score_scalar(tri.w_xyz, tri.p_sum)

    # -- edge-weight bookkeeping (kept next to the diff that feeds it) ---------
    def _fold_edge_deltas(self, edge_delta: dict[tuple[int, int], int]) -> None:
        for pair, delta in edge_delta.items():
            if not delta:
                continue
            new_w = self._ci.get(pair, 0) + delta
            if new_w:
                self._ci[pair] = new_w
            else:
                self._ci.pop(pair, None)

    # -- compaction -------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if not self.auto_compact:
            return
        stats = self.proj.memory_stats()
        bloated = stats["interned_users"] > max(
            self.compact_min, self.compact_ratio * stats["live_users"]
        ) or stats["interned_pages"] > max(
            self.compact_min, self.compact_ratio * stats["live_pages"]
        )
        if bloated:
            self.compact()

    def compact(self) -> None:
        """Compact the projector id spaces and rebuild engine state.

        Compaction remaps every dense id, so the engine's id-keyed
        stores are rebuilt from the (already compacted, still exact)
        projector state: CI edges and ``P'`` from the triple store, the
        incidence from the live comments, and the triangle store from a
        fresh closure over the thresholded adjacency.  Amortized cost is
        bounded because compaction only fires after ~``compact_ratio``×
        growth; queries before and after are identical (asserted in
        tests).
        """
        with self.metrics.time("engine.compact"):
            self.proj.compact()
            self._rebuild_from_projector()
        self.metrics.counter("engine.compactions").inc()

    def _rebuild_from_projector(self) -> None:
        ci = self.proj.ci_graph()
        self._ci = ci.edges.to_dict()
        self._pprime = {
            i: int(c) for i, c in enumerate(ci.page_counts) if c
        }
        btm = self.proj.to_btm()
        self._user_pages = {}
        for uid, pid in zip(btm.users.tolist(), btm.pages.tolist()):
            pages = self._user_pages.setdefault(uid, {})
            pages[pid] = pages.get(pid, 0) + 1
        cutoff = self.config.min_triangle_weight
        self._adj = {}
        for (u, v), w in self._ci.items():
            if w >= cutoff:
                self._adj.setdefault(u, {})[v] = w
                self._adj.setdefault(v, {})[u] = w
        self._tris = {}
        self._tri_by_user = {}
        rescore: set[tuple[int, int, int]] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v <= u:
                    continue
                for w in nbrs.keys() & self._adj[v].keys():
                    if w <= v:
                        continue
                    key = (u, v, w)
                    tri = _TriScore(
                        self._adj[u][v], self._adj[u][w], self._adj[v][w]
                    )
                    self._tris[key] = tri
                    for vertex in key:
                        self._tri_by_user.setdefault(vertex, set()).add(key)
                    rescore.add(key)
        self._rescore(rescore)

    # -- queries ----------------------------------------------------------------
    def top_k_triplets(self, k: int, by: str = "t") -> list[dict]:
        """The *k* highest-scoring live triplets as name-keyed rows.

        ``by`` ranks by ``"t"`` (eq. 7), ``"c"`` (eq. 4, requires
        ``compute_hypergraph``), or ``"min_weight"``.  Rows are sorted by
        descending score with the lexicographic author triple as the
        deterministic tie-break, and carry every per-triplet metric, so
        the result is directly comparable with a batch run's (see
        :func:`repro.analysis.export.top_triplets_rows`).
        """
        with self.metrics.time("engine.query"):
            rows = self._triplet_rows()
            key = self._rank_key(by)
            rows.sort(key=lambda r: (-r[key], r["authors"]))
            return rows[: max(int(k), 0)]

    def _rank_key(self, by: str) -> str:
        if by == "t":
            return "t"
        if by == "min_weight":
            return "min_weight"
        if by == "c":
            if not self.config.compute_hypergraph:
                raise ValueError(
                    "ranking by C requires compute_hypergraph=True"
                )
            return "c"
        raise ValueError(f"unknown ranking {by!r} (use t, c, min_weight)")

    def _triplet_rows(self) -> list[dict]:
        name_of = self.proj.user_names.key_of
        rows = []
        for (a, b, c), tri in self._tris.items():
            names = tuple(sorted((str(name_of(a)), str(name_of(b)), str(name_of(c)))))
            rows.append(
                {
                    "authors": names,
                    "min_weight": min(tri.w_ab, tri.w_ac, tri.w_bc),
                    "weights": tuple(sorted((tri.w_ab, tri.w_ac, tri.w_bc))),
                    "t": tri.t,
                    "w_xyz": tri.w_xyz,
                    "p_sum": tri.p_sum,
                    "c": tri.c,
                }
            )
        return rows

    def user_score(self, author: str) -> dict:
        """Live per-author summary: ``P'``, page count, degree, best scores.

        Returns a row with ``present=False`` (zeros elsewhere) for
        authors not currently in the live window — a monitoring query
        must not throw on unknown names.
        """
        with self.metrics.time("engine.query"):
            uid = self.proj.user_names.get(author)
            if uid is None or uid not in self._user_pages:
                return {
                    "author": author,
                    "present": False,
                    "p_prime": 0,
                    "pages": 0,
                    "degree": 0,
                    "n_triplets": 0,
                    "best_t": 0.0,
                    "best_c": 0.0,
                }
            tris = self._tri_by_user.get(uid, set())
            return {
                "author": author,
                "present": True,
                "p_prime": self._pprime.get(uid, 0),
                "pages": len(self._user_pages.get(uid, {})),
                "degree": len(self._adj.get(uid, {})),
                "n_triplets": len(tris),
                "best_t": max((self._tris[k].t for k in tris), default=0.0),
                "best_c": max((self._tris[k].c for k in tris), default=0.0),
            }

    def component_of(self, author: str) -> list[str]:
        """Sorted member names of *author*'s thresholded-graph component.

        Empty when the author is absent or isolated at the current
        cutoff (no ``min_component_size`` floor is applied here — this
        is the investigative "who is this account coordinating with"
        query).
        """
        with self.metrics.time("engine.query"):
            uid = self.proj.user_names.get(author)
            if uid is None or uid not in self._adj:
                return []
            seen = {uid}
            frontier = [uid]
            while frontier:
                nxt = []
                for u in frontier:
                    for v in self._adj.get(u, ()):
                        if v not in seen:
                            seen.add(v)
                            nxt.append(v)
                frontier = nxt
            name_of = self.proj.user_names.key_of
            return sorted(str(name_of(u)) for u in seen)

    def components(self) -> list[list[str]]:
        """All candidate networks (components ≥ ``min_component_size``),
        each as a sorted name list, largest first."""
        with self.metrics.time("engine.query"):
            seen: set[int] = set()
            out: list[list[str]] = []
            name_of = self.proj.user_names.key_of
            for start in sorted(self._adj):
                if start in seen:
                    continue
                comp = {start}
                frontier = [start]
                while frontier:
                    nxt = []
                    for u in frontier:
                        for v in self._adj.get(u, ()):
                            if v not in comp:
                                comp.add(v)
                                nxt.append(v)
                    frontier = nxt
                seen |= comp
                if len(comp) >= self.config.min_component_size:
                    out.append(sorted(str(name_of(u)) for u in comp))
            out.sort(key=lambda names: (-len(names), names))
            return out

    def owned_top_k_triplets(
        self, k: int, shard_id: int, n_shards: int, by: str = "t"
    ) -> list[dict]:
        """The *k* best live triplets **owned** by one query shard.

        Under the user-hash partition of the serving tier
        (:func:`repro.serve.ingest.shard_of`) a triplet is owned by the
        shard of its lexicographically-first author, so every triplet is
        owned exactly once.  Each shard's owned list is the global
        ranking restricted to its keyspace — any global top-k row is
        therefore within the first k of its owner's list, which makes
        the gateway's k-way merge (:func:`repro.serve.shard.merge_topk`)
        exact.  Rows and ordering are identical to
        :meth:`top_k_triplets` restricted to owned triplets.
        """
        from repro.serve.ingest import shard_of

        rows = self.top_k_triplets(len(self._tris), by=by)
        owned = [
            r for r in rows if shard_of(r["authors"][0], n_shards) == shard_id
        ]
        return owned[: max(int(k), 0)]

    def owned_component_fragment(
        self, shard_id: int, n_shards: int
    ) -> dict[str, list]:
        """This shard's fragment of the thresholded graph, name-keyed.

        ``vertices`` are the owned users present in the thresholded
        adjacency; ``edges`` every edge incident to an owned vertex as a
        sorted name pair — *including* boundary edges whose far end
        another shard owns.  Unioning all shards' fragments (gateway
        union-find, :func:`repro.serve.shard.merge_components`) rebuilds
        the full component structure exactly: every vertex appears in
        one fragment, every edge in at least one.
        """
        from repro.serve.ingest import shard_of

        with self.metrics.time("engine.query"):
            name_of = self.proj.user_names.key_of
            vertices: list[str] = []
            edges: set[tuple[str, str]] = set()
            for u, nbrs in self._adj.items():
                un = str(name_of(u))
                if shard_of(un, n_shards) != shard_id:
                    continue
                vertices.append(un)
                for v in nbrs:
                    vn = str(name_of(v))
                    edges.add((un, vn) if un <= vn else (vn, un))
            return {"vertices": sorted(vertices), "edges": sorted(edges)}

    def snapshot(self) -> PipelineResult:
        """Export the live state as a batch-compatible
        :class:`~repro.pipeline.results.PipelineResult`.

        Every artifact (CI graph, thresholded view, canonical triangle
        set, ``T``/``w_xyz``/``C`` arrays, component reports) is
        assembled from the engine's incremental stores, so downstream
        consumers — DOT export, markdown reports, the component census —
        work on live state unchanged.
        """
        with self.metrics.time("engine.snapshot"):
            ci = self.proj.ci_graph()
            ci_thr = ci.threshold(self.config.min_triangle_weight)
            keys = sorted(self._tris)
            if keys:
                arr = np.asarray(keys, dtype=np.int64)
                tris = [self._tris[k] for k in keys]
                triangles = TriangleSet(
                    a=arr[:, 0],
                    b=arr[:, 1],
                    c=arr[:, 2],
                    w_ab=np.asarray([t.w_ab for t in tris], dtype=np.int64),
                    w_ac=np.asarray([t.w_ac for t in tris], dtype=np.int64),
                    w_bc=np.asarray([t.w_bc for t in tris], dtype=np.int64),
                )
                t_vals = np.asarray([t.t for t in tris], dtype=np.float64)
                w_xyz = np.asarray([t.w_xyz for t in tris], dtype=np.int64)
                p_sum = np.asarray([t.p_sum for t in tris], dtype=np.int64)
                c_vals = np.asarray([t.c for t in tris], dtype=np.float64)
            else:
                triangles = TriangleSet.empty()
                t_vals = np.empty(0, dtype=np.float64)
                w_xyz = np.empty(0, dtype=np.int64)
                p_sum = np.empty(0, dtype=np.int64)
                c_vals = np.empty(0, dtype=np.float64)
            triplet_metrics = (
                TripletMetrics(
                    triangles=triangles,
                    w_xyz=w_xyz,
                    p_sum=p_sum,
                    c_scores=c_vals,
                )
                if self.config.compute_hypergraph
                else None
            )
            components = component_reports(
                ci_thr, self.config.min_component_size
            )
            stats = {
                "pages": self.proj.n_pages,
                "comments": self.proj.n_comments,
                "triangles": triangles.n_triangles,
                "thresholded_edges": ci_thr.n_edges,
                "components": len(components),
            }
            return PipelineResult(
                config=self.config,
                filter_report=FilterReport(
                    removed_names=tuple(self._filtered_names),
                    removed_user_ids=(),
                    removed_comments=self._filtered_comments,
                ),
                ci=ci,
                ci_thresholded=ci_thr,
                triangles=triangles,
                t_scores=t_vals,
                triplet_metrics=triplet_metrics,
                components=components,
                stats=stats,
                timings=self.metrics.timings,
            )

    def status(self) -> dict:
        """Service-level state summary plus the full metrics snapshot."""
        stats = self.proj.memory_stats()
        return {
            "live_comments": self.n_live_comments,
            "live_pages": stats["live_pages"],
            "live_users": stats["live_users"],
            "interned_users": stats["interned_users"],
            "interned_pages": stats["interned_pages"],
            "evict_cutoff": self.evict_cutoff,
            "ci_edges": len(self._ci),
            "thresholded_edges": sum(
                len(nbrs) for nbrs in self._adj.values()
            ) // 2,
            "triangles": len(self._tris),
            "filtered_comments": self._filtered_comments,
            "metrics": self.metrics.to_dict(),
        }

    # -- small accessors ---------------------------------------------------------
    @property
    def n_live_comments(self) -> int:
        """Comments currently inside the live window."""
        return self.proj.n_comments

    @property
    def n_triangles(self) -> int:
        """Triangles currently above the cutoff."""
        return len(self._tris)

    def ci_edges(self) -> dict[tuple[str, str], int]:
        """Current ``w'`` weights keyed by sorted author-name pairs."""
        name_of = self.proj.user_names.key_of
        out: dict[tuple[str, str], int] = {}
        for (u, v), w in self._ci.items():
            a, b = str(name_of(u)), str(name_of(v))
            out[(a, b) if a <= b else (b, a)] = w
        return out

    def page_counts(self) -> dict[str, int]:
        """Nonzero ``P'`` entries keyed by author name."""
        name_of = self.proj.user_names.key_of
        return {str(name_of(u)): c for u, c in self._pprime.items()}

    def live_authors(self) -> list[str]:
        """Sorted names of authors with at least one live comment."""
        name_of = self.proj.user_names.key_of
        return sorted(str(name_of(u)) for u in self._user_pages)

    def filtered_names(self) -> tuple[str, ...]:
        """Author names the filter has excluded so far (first-seen order)."""
        return tuple(self._filtered_names)

    @property
    def filtered_comments(self) -> int:
        """Comments dropped by the author filter so far."""
        return self._filtered_comments

    def live_incidence(self) -> dict[str, dict[str, int]]:
        """Live comment counts as ``{author: {page: count}}``, name-keyed.

        This is the engine's ``w_xyz``/``p_x`` substrate (eqs. 2–3)
        exported by name so page-partitioned ingest shards can exchange
        it: pages are disjoint across shards under the page hash, so the
        per-shard incidences merge by plain union into exactly the
        single-engine incidence.
        """
        uname = self.proj.user_names.key_of
        pname = self.proj.page_names.key_of
        return {
            str(uname(u)): {str(pname(p)): int(c) for p, c in pages.items()}
            for u, pages in self._user_pages.items()
        }
