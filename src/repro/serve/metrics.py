"""Service observability: counters, gauges, and latency histograms.

A long-lived detection service cannot be profiled after the fact the way
a batch run can (:class:`~repro.util.timers.StageTimings` holds a bounded
ledger of named stage durations); it needs *standing* instruments that
stay O(1) in memory over an unbounded run.  :class:`ServiceMetrics` is a
small registry in that idiom:

- :class:`Counter` — monotone event counts (events ingested, dropped,
  triangles rescored, …);
- :class:`Gauge` — point-in-time levels (live comments, CI edges,
  watermark, queue depth);
- :class:`Histogram` — fixed log-spaced buckets for latency
  distributions, with percentile estimates (p50/p99) read from the
  bucket boundaries so memory never grows with the observation count.

``ServiceMetrics.time(name)`` is the bridge back to the
``StageTimings`` style: a context manager that observes the elapsed
seconds into the named histogram *and* accumulates them into an embedded
``StageTimings`` ledger, so one instrumentation point feeds both the
service dashboard and the familiar per-stage totals.
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from typing import Iterator

from repro.util.timers import StageTimings

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ServiceMetrics",
    "prometheus_text",
]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time level (settable both ways)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the current level."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket latency histogram with percentile estimates.

    Buckets are log-spaced powers of ``base`` starting at ``least``
    (default: 1 µs … ~137 s over 54 buckets at base 2^(1/2)), plus an
    overflow bucket.  An observation lands in the first bucket whose
    upper bound is >= the value; percentiles report that upper bound, so
    estimates err high by at most one bucket width (≤ 41 % at the
    default base) and the structure is O(buckets) forever.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        name: str,
        least: float = 1e-6,
        base: float = 2.0 ** 0.5,
        n_buckets: int = 54,
    ) -> None:
        self.name = name
        self.bounds = [least * base**i for i in range(n_buckets)]
        self.counts = [0] * (n_buckets + 1)  # +1 = overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (seconds, bytes, … — any nonnegative)."""
        value = float(value)
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative observation")
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the *q*-quantile (``0 < q <= 1``)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max  # pragma: no cover - unreachable (seen ends at count)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """``{count, mean, p50, p99, min, max}`` for dashboards."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class ServiceMetrics:
    """A named registry of counters, gauges, and histograms.

    Instruments are created on first access (so call sites never
    pre-declare) and live for the registry's lifetime.  One registry
    belongs to one :class:`~repro.serve.service.DetectionService` /
    :class:`~repro.serve.engine.DetectionEngine` pair and is surfaced
    through their ``status()``.

    Examples
    --------
    >>> m = ServiceMetrics()
    >>> m.counter("events").inc(3)
    >>> m.gauge("queue_depth").set(7)
    >>> with m.time("update"):
    ...     pass
    >>> d = m.to_dict()
    >>> d["counters"]["events"], d["gauges"]["queue_depth"]
    (3, 7)
    >>> d["histograms"]["update"]["count"]
    1
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.timings = StageTimings()

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under *name* (created on first use)."""
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a block into histogram *name* and the stage ledger."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.histogram(name).observe(elapsed)
            self.timings.record(name, elapsed)

    def to_dict(self) -> dict:
        """Plain-data snapshot (JSON-serializable) of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def snapshot_instruments(
        self,
    ) -> tuple[list[Counter], list[Gauge], list[Histogram]]:
        """Name-sorted instrument lists (the exposition iteration order)."""
        return (
            [c for _n, c in sorted(self._counters.items())],
            [g for _n, g in sorted(self._gauges.items())],
            [h for _n, h in sorted(self._histograms.items())],
        )

    def format(self) -> str:
        """Fixed-width dashboard rendering (counters, gauges, latencies)."""
        lines: list[str] = []
        if self._counters:
            width = max(len(n) for n in self._counters)
            lines.append("counters:")
            lines += [
                f"  {n:<{width}}  {c.value:>12,}"
                for n, c in sorted(self._counters.items())
            ]
        if self._gauges:
            width = max(len(n) for n in self._gauges)
            lines.append("gauges:")
            lines += [
                f"  {n:<{width}}  {g.value:>12,}"
                for n, g in sorted(self._gauges.items())
            ]
        if self._histograms:
            width = max(len(n) for n in self._histograms)
            lines.append("latencies:")
            for n, h in sorted(self._histograms.items()):
                s = h.summary()
                lines.append(
                    f"  {n:<{width}}  n={s['count']:<8,} "
                    f"mean={s['mean'] * 1e3:8.3f}ms "
                    f"p50={s['p50'] * 1e3:8.3f}ms "
                    f"p99={s['p99'] * 1e3:8.3f}ms"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


_PROM_UNSAFE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(namespace: str, name: str) -> str:
    """A dotted instrument name as a legal Prometheus metric name."""
    full = f"{namespace}_{name}" if namespace else name
    full = _PROM_UNSAFE.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _prom_value(value: float) -> str:
    """A finite sample value in exposition syntax (ints stay integral)."""
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{float(value):.10g}"


def prometheus_text(metrics: ServiceMetrics, namespace: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le="..."}`` series (closed under the log-spaced
    upper bounds, plus ``+Inf``) with ``_sum`` / ``_count``.  Dots in
    instrument names become underscores.  Empty histograms render as
    all-zero bucket series — never ``NaN``/``inf`` — so ``/metrics`` is
    scrapeable from the first request onward.
    """
    counters, gauges, histograms = metrics.snapshot_instruments()
    lines: list[str] = []
    for c in counters:
        name = _prom_name(namespace, c.name) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_prom_value(c.value)}")
    for g in gauges:
        name = _prom_name(namespace, g.name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_prom_value(g.value)}")
    for h in histograms:
        name = _prom_name(namespace, h.name)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(h.bounds, h.counts):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{bound:.10g}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {h.count}')
        lines.append(f"{name}_sum {_prom_value(h.total)}")
        lines.append(f"{name}_count {h.count}")
    return "\n".join(lines) + "\n"
