"""Sharded serving tier: N supervised engine shards behind one facade.

:class:`ShardedDetectionService` turns the single supervised serve loop
into a horizontally scaled tier.  Queries are always partitioned by the
stable user hash :func:`repro.serve.ingest.shard_of`; **ingest** runs
in one of two modes (``ingest_sharding``):

- ``"replicated"`` (default) — every event fans out to every shard, so
  each shard's :class:`~repro.serve.engine.DetectionEngine` holds the
  full live window and answers its owned queries locally.  Maximally
  available (a dead shard 503s only its keyspace) but every shard pays
  O(stream) ingest.
- ``"page"`` — each event routes only to the shard its page hashes to
  (:func:`repro.serve.ingest.page_shard_of`), so per-shard ingest cost
  is O(stream/N).  Page locality keeps this exact: a page's co-comment
  pairs are computable from that page's timeline alone and pages are
  disjoint across shards, so each shard builds per-page pair ledgers
  locally and the tier **exchanges partial pair weights** — the shards
  publish their ``w'``/``P'``/incidence partials through the
  :mod:`repro.exec.shm` output path (the transport the engine-state
  handoff already rides) and the facade merges them
  (:mod:`repro.serve.exchange`) before CI thresholding and triangle
  scoring in an :class:`~repro.serve.exchange.AggregateView`.  Shards
  see only a timestamp subset of the stream, so the tier tracks the
  global watermark and broadcasts it (supervisor op ``observe``) so
  every shard's eviction cutoff converges on the single-engine one.
  Ingest shards skip local triangle maintenance entirely (their
  engines run with an unreachable cutoff — owner-computes: thresholding
  and scoring happen once, at the aggregator).

**Queries are partitioned either way** — shard ``s`` is authoritative
for the users hashing to ``s``.  ``user_score`` routes to the owner;
global top-k is the k-way merge of per-shard *owned* candidate lists
(a triplet is owned by the shard of its lexicographically-first
author, so each appears exactly once); components are rebuilt by a
gateway-side union-find over per-shard owned-vertex fragments whose
boundary edges stitch the cuts back together.  In page mode the same
merge machinery runs over the aggregate's per-owner views.  Each
answer is bit-identical to the single-engine oracle's
(:func:`repro.verify.sharded.run_sharded_parity` sweeps both ingest
modes to enforce this).

What replication buys: query throughput scales with shards and
availability degrades **per keyspace** — a crashed shard 503s only the
users it owns while its supervisor restarts it.  What page partitioning
buys: ingest throughput scales with shards too (each shard processes
~1/N of the stream — ``benchmarks/test_bench_ingest_shard.py`` pins
this), at the cost of query-time exchange latency and coarser
availability (an exchange needs *every* shard, so a dead shard 503s
aggregate queries until it restarts).

Each shard is a :class:`~repro.serve.supervisor.ServeSupervisor` with
``max_restarts=0``: the shard tier owns restart policy.  A detected
death flips the shard to *restarting* (queries raise
:class:`ShardUnavailableError` → HTTP 503), a background thread runs
``sup.restart()`` under capped backoff, and a restart-budget exhaustion
marks the shard permanently failed.  With a durable root every shard
journals to its own ``shard-NN/`` store and recovery is exact; without
one shards are volatile and a restart replays only the retained
in-flight suffix.

Engine state can also be pulled out of a live shard wholesale:
:meth:`ShardedDetectionService.engine_clone` asks the child to publish
its state arrays through the :mod:`repro.exec.shm` output path
(numeric arrays via shared memory, interner keys length-packed into
``uint8`` blobs since object arrays cannot cross a segment) and
rehydrates a private :class:`DetectionEngine` in the caller.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import replace
from itertools import islice
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

from repro.exec.shm import (
    OutputWriter,
    claim_output,
    output_prefix,
    sweep_segments,
)
from repro.pipeline.config import PipelineConfig
from repro.serve.engine import DetectionEngine
from repro.serve.exchange import (
    AggregateView,
    claim_partial_weights,
    merge_partials,
    pack_str_array,
    unpack_str_array,
)
from repro.serve.ingest import Event, page_shard_of, shard_of
from repro.serve.metrics import ServiceMetrics
from repro.serve.supervisor import DegradedError, ServeSupervisor
from repro.store.engine_state import engine_state_arrays, restore_engine_state

__all__ = [
    "INGEST_MODES",
    "ShardUnavailableError",
    "ShardedDetectionService",
    "claim_engine_state",
    "merge_components",
    "merge_topk",
    "merged_component_of",
    "page_shard_of",
    "publish_engine_state",
    "shard_of",
]

_RANKS = ("t", "c", "min_weight")

#: Supported ``ingest_sharding`` modes of the tier.
INGEST_MODES = ("replicated", "page")

#: Edge-weight cutoff no live pair can reach: page-mode ingest shards run
#: their engines with this so they maintain pair ledgers, ``P'`` and the
#: incidence (all cutoff-independent) but never materialize thresholded
#: adjacency or triangles — that work happens once, at the aggregator.
_LEDGER_ONLY_CUTOFF = 2**62

# Backwards-compatible aliases: the packers now live in
# repro.serve.exchange (both handoffs share them).
_pack_str_array = pack_str_array
_unpack_str_array = unpack_str_array


class ShardUnavailableError(RuntimeError):
    """The authoritative shard for a query is down or restarting.

    The HTTP gateway maps this to ``503 Service Unavailable`` with a
    ``Retry-After`` hint; only the dead shard's keyspace is affected.
    """

    def __init__(self, shard_id: int, reason: str) -> None:
        super().__init__(f"shard {shard_id} unavailable: {reason}")
        self.shard_id = shard_id
        self.reason = reason


# ---------------------------------------------------------------------------
# Merge helpers (pure functions — the gateway-side halves of each query)
# ---------------------------------------------------------------------------


def _merge_key(by: str) -> Callable[[dict], tuple]:
    if by not in _RANKS:
        raise ValueError(f"unknown ranking {by!r} (use t, c, min_weight)")
    return lambda row: (-row[by], row["authors"])


def merge_topk(per_shard: Iterable[list[dict]], k: int, by: str) -> list[dict]:
    """K-way merge of per-shard owned candidate lists into the global top-k.

    Each input list is already sorted by the engine's ranking
    (descending score, lexicographic author tie-break) and owns its
    rows exclusively, so a heap merge of the lists *is* the global
    ranking and its first *k* rows are exact.
    """
    merged = heapq.merge(*per_shard, key=_merge_key(by))
    return list(islice(merged, max(int(k), 0)))


class _UnionFind:
    """Small path-compressing union-find over vertex names."""

    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def add(self, v: str) -> None:
        self.parent.setdefault(v, v)

    def find(self, v: str) -> str:
        parent = self.parent
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    def union(self, a: str, b: str) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def groups(self) -> list[list[str]]:
        by_root: dict[str, list[str]] = {}
        for v in self.parent:
            by_root.setdefault(self.find(v), []).append(v)
        return [sorted(members) for members in by_root.values()]


def _fragments_union(fragments: Iterable[dict]) -> _UnionFind:
    uf = _UnionFind()
    for frag in fragments:
        for v in frag["vertices"]:
            uf.add(v)
        for a, b in frag["edges"]:
            uf.union(a, b)
    return uf


def merge_components(
    fragments: Iterable[dict], min_component_size: int = 1
) -> list[list[str]]:
    """Union per-shard graph fragments into global components.

    Boundary edges are reported by both incident shards; the union-find
    is idempotent under the duplication.  Output matches
    :meth:`DetectionEngine.components` exactly: sorted name lists,
    floored at *min_component_size*, largest first with lexicographic
    tie-break.
    """
    groups = [
        g
        for g in _fragments_union(fragments).groups()
        if len(g) >= min_component_size
    ]
    groups.sort(key=lambda names: (-len(names), names))
    return groups


def merged_component_of(fragments: Iterable[dict], author: str) -> list[str]:
    """*author*'s component across fragments (empty when absent/isolated)."""
    uf = _fragments_union(fragments)
    if author not in uf.parent:
        return []
    root = uf.find(author)
    return sorted(v for v in uf.parent if uf.find(v) == root)


# ---------------------------------------------------------------------------
# Engine-state handoff over the shm output path
# ---------------------------------------------------------------------------


def publish_engine_state(engine: DetectionEngine, writer: OutputWriter) -> dict:
    """Child-side half of the state handoff: engine → shm segments.

    Numeric state arrays are published directly through
    :meth:`OutputWriter.share`; the object-dtype arrays (interner keys,
    filtered names — variable-length strings cannot live in a fixed
    segment) are packed into ``uint8`` data + ``int64`` length arrays
    first.  Returns a picklable ``{"arrays": ..., "meta": ...}`` payload
    of :class:`~repro.exec.shm.ShmRef` trees for the pipe.
    """
    arrays, meta = engine_state_arrays(engine)
    packed: dict[str, Any] = {}
    for key, arr in arrays.items():
        packed[key] = _pack_str_array(arr.tolist()) if arr.dtype == object else arr
    return {"arrays": writer.share(packed), "meta": meta}


def claim_engine_state(
    payload: dict,
    config: PipelineConfig | None,
    *,
    metrics: ServiceMetrics | None = None,
) -> DetectionEngine:
    """Caller-side half: claim the segments and rehydrate an engine.

    Claiming copies and unlinks every segment, so a completed handoff
    leaves ``/dev/shm`` clean.  The snapshot codec
    (:func:`repro.store.engine_state.restore_engine_state`) validates
    the config fingerprint — a clone under the wrong config refuses.
    """
    packed = claim_output(payload["arrays"])
    arrays: dict[str, np.ndarray] = {}
    for key, value in packed.items():
        if isinstance(value, dict) and "packed_data" in value:
            arrays[key] = np.asarray(_unpack_str_array(value), dtype=object)
        else:
            arrays[key] = value
    return restore_engine_state(arrays, payload["meta"], config, metrics=metrics)


# ---------------------------------------------------------------------------
# The sharded service
# ---------------------------------------------------------------------------


class _Shard:
    """One supervised engine shard plus its serialization + health state."""

    __slots__ = ("sid", "sup", "lock", "restarting", "failed", "restarts")

    def __init__(self, sid: int, sup: ServeSupervisor) -> None:
        self.sid = sid
        self.sup = sup
        self.lock = threading.Lock()  # serializes this shard's pipe
        self.restarting = False
        self.failed = False
        self.restarts = 0


class ShardedDetectionService:
    """N supervised engine shards behind one exact query facade.

    Parameters
    ----------
    config:
        Pipeline configuration, forked into every shard (and used to
        validate :meth:`engine_clone` handoffs).
    n_shards:
        Worker processes / query keyspace partitions.
    ingest_sharding:
        ``"replicated"`` (every event to every shard) or ``"page"``
        (events route by page hash; queries answered from the
        partial-weight exchange).  ``None`` (default) reads
        ``config.ingest_sharding``.
    directory:
        Optional durable root; shard ``s`` journals under
        ``directory/shard-NN``.  ``None`` = volatile shards.
    heartbeat_timeout / query_timeout:
        Watchdog deadline per shard request; how long a query waits for
        a shard's pipe before declaring the shard busy (503).
    max_shard_restarts / restart_backoff:
        Per-shard restart budget and base backoff (doubles per
        consecutive attempt) applied by the tier's background restart
        thread; an exhausted budget fails the shard permanently.
    **service_kwargs:
        Forwarded to every shard's child service (``window_horizon``,
        ``batch_size``, and — with a durable root — ``fsync``,
        ``snapshot_every``, …).
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        n_shards: int = 2,
        ingest_sharding: str | None = None,
        directory: str | Path | None = None,
        metrics: ServiceMetrics | None = None,
        heartbeat_timeout: float = 30.0,
        query_timeout: float = 5.0,
        max_shard_restarts: int = 5,
        restart_backoff: float = 0.05,
        forward_batch: int = 512,
        queue_capacity: int = 65_536,
        **service_kwargs: Any,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.config = config if config is not None else PipelineConfig()
        if ingest_sharding is None:
            ingest_sharding = self.config.ingest_sharding
        if ingest_sharding not in INGEST_MODES:
            raise ValueError(
                f"unknown ingest_sharding {ingest_sharding!r} "
                f"(use one of {', '.join(INGEST_MODES)})"
            )
        self.ingest_sharding = ingest_sharding
        self._page_mode = ingest_sharding == "page"
        # Page-mode ingest shards only keep ledgers (cutoff-independent
        # state); thresholding + scoring happen once, in the aggregate.
        child_config = (
            replace(self.config, min_triangle_weight=_LEDGER_ONLY_CUTOFF)
            if self._page_mode
            else self.config
        )
        self.n_shards = int(n_shards)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.query_timeout = float(query_timeout)
        self.max_shard_restarts = int(max_shard_restarts)
        self.restart_backoff = float(restart_backoff)
        self.directory = Path(directory) if directory is not None else None
        self._shm_prefix = output_prefix()  # this process claims handoffs
        self._state_lock = threading.Lock()
        self._restart_threads: dict[int, threading.Thread] = {}
        # Page-mode tier state: the global watermark broadcast and the
        # memoized cross-shard aggregate (invalidated by any ingest).
        self._forward_batch = int(forward_batch)
        self._max_event_t: int | None = None
        self._events_since_observe = 0
        self._agg_lock = threading.Lock()
        self._aggregate: AggregateView | None = None
        self._shards: list[_Shard] = []
        try:
            for sid in range(self.n_shards):
                shard_dir = (
                    None
                    if self.directory is None
                    else self.directory / f"shard-{sid:02d}"
                )
                sup = ServeSupervisor(
                    child_config,
                    directory=shard_dir,
                    queue_capacity=queue_capacity,
                    queue_policy="reject",
                    forward_batch=forward_batch,
                    heartbeat_timeout=heartbeat_timeout,
                    # The tier owns restart policy: any child death
                    # degrades the supervisor immediately and the
                    # background restart thread takes over.
                    max_restarts=0,
                    backoff_base=self.restart_backoff,
                    backoff_cap=self.restart_backoff,
                    **service_kwargs,
                )
                self._shards.append(_Shard(sid, sup))
                self.metrics.gauge(f"sharded.shard{sid}.up").set(1)
        except BaseException:
            self.close()
            raise
        self.metrics.gauge("sharded.n_shards").set(self.n_shards)

    # -- ingest ------------------------------------------------------------
    def submit(self, event: Event) -> bool:
        """Route one event into the tier (mode-dependent).

        Replicated mode fans the event out to every shard; page mode
        delivers it only to the shard its page hashes to.  Returns
        ``False`` when a live target shard applied backpressure (its
        parent queue is full while it restarts) — the producer should
        back off and retry, mirroring :meth:`DetectionService.submit`.
        Permanently failed shards shed silently (counted) rather than
        wedging ingest forever.
        """
        if self._page_mode:
            return self._submit_page(event)
        ok = True
        for shard in self._shards:
            if shard.failed:
                self.metrics.counter("sharded.shed").inc()
                continue
            with shard.lock:
                admitted = shard.sup.submit(event)
            if shard.sup.degraded:
                self._begin_restart(shard)
            if not admitted:
                self.metrics.counter("sharded.backpressure").inc()
                ok = False
        self.metrics.counter("sharded.events").inc()
        return ok

    def _submit_page(self, event: Event) -> bool:
        """Page-hash delivery: one event → exactly one ingest shard.

        The tier tracks the global max event time itself (each shard
        sees only a timestamp subset) and broadcasts it every
        ``forward_batch`` events so per-shard eviction cutoffs track the
        single-engine one.  Any accepted event invalidates the memoized
        cross-shard aggregate.
        """
        t = int(event[2])
        if self._max_event_t is None or t > self._max_event_t:
            self._max_event_t = t
        self._aggregate = None
        sid = page_shard_of(event[1], self.n_shards)
        shard = self._shards[sid]
        if shard.failed:
            self.metrics.counter("sharded.shed").inc()
            self.metrics.counter("sharded.events").inc()
            return True
        with shard.lock:
            admitted = shard.sup.submit(event)
        if shard.sup.degraded:
            self._begin_restart(shard)
        if not admitted:
            self.metrics.counter("sharded.backpressure").inc()
        self.metrics.counter("sharded.events").inc()
        self._events_since_observe += 1
        if self._events_since_observe >= self._forward_batch:
            self._broadcast_watermark()
        return admitted

    def _broadcast_watermark(self) -> None:
        """Push the tier-wide max event time into every live shard."""
        self._events_since_observe = 0
        t = self._max_event_t
        if t is None:
            return
        for shard in self._shards:
            if shard.failed:
                continue
            try:
                with shard.lock:
                    shard.sup.observe(t)
            except DegradedError:
                pass
            if shard.sup.degraded:
                self._begin_restart(shard)

    def run_events(
        self, events: Iterable[Event], *, max_events: int | None = None
    ) -> int:
        """Feed an iterable through every shard; returns events consumed."""
        consumed = 0
        try:
            for event in events:
                if max_events is not None and consumed >= max_events:
                    break
                consumed += 1
                while not self.submit(event):
                    time.sleep(0.01)  # a shard is restarting with a full queue
        except KeyboardInterrupt:
            self.metrics.counter("service.interrupted").inc()
        self.flush()
        return consumed

    def flush(self) -> None:
        """Forward and drain every live shard (waits out active restarts).

        In page mode the global watermark is re-broadcast afterwards so
        every shard's eviction cutoff lands on the tier-wide final value
        before any partial weights are exchanged.
        """
        for shard in self._shards:
            if shard.failed:
                continue
            self._await_restart(shard)
            with shard.lock:
                shard.sup.flush()
        if self._page_mode:
            self._aggregate = None
            self._broadcast_watermark()

    # -- restart machinery -------------------------------------------------
    def _begin_restart(self, shard: _Shard) -> None:
        with self._state_lock:
            if shard.restarting or shard.failed:
                return
            if shard.restarts >= self.max_shard_restarts:
                shard.failed = True
                self.metrics.gauge(f"sharded.shard{shard.sid}.up").set(0)
                return
            shard.restarting = True
        self.metrics.gauge(f"sharded.shard{shard.sid}.up").set(0)
        thread = threading.Thread(
            target=self._restart_shard,
            args=(shard,),
            daemon=True,
            name=f"shard-{shard.sid}-restart",
        )
        self._restart_threads[shard.sid] = thread
        thread.start()

    def _restart_shard(self, shard: _Shard) -> None:
        try:
            while True:
                with self._state_lock:
                    if shard.restarts >= self.max_shard_restarts:
                        shard.failed = True
                        return
                    shard.restarts += 1
                    attempt = shard.restarts
                time.sleep(
                    min(1.0, self.restart_backoff * (2 ** (attempt - 1)))
                )
                try:
                    with shard.lock:
                        shard.sup.restart()
                    self.metrics.counter("sharded.restarts").inc()
                    self.metrics.gauge(f"sharded.shard{shard.sid}.up").set(1)
                    return
                except Exception:
                    # Failed start attempt: keep the shard visibly down
                    # and try again until the budget runs out.
                    shard.sup.degraded = True
        finally:
            with self._state_lock:
                shard.restarting = False

    def _await_restart(self, shard: _Shard, timeout: float = 30.0) -> None:
        thread = self._restart_threads.get(shard.sid)
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def await_healthy(self, timeout: float = 30.0) -> bool:
        """Block until no shard is mid-restart; ``True`` if all are up."""
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            self._await_restart(shard, max(0.0, deadline - time.monotonic()))
        return all(
            not s.failed and not s.restarting and not s.sup.degraded
            for s in self._shards
        )

    # -- queries -----------------------------------------------------------
    def _query(self, shard_id: int, fn: Callable[[ServeSupervisor], Any]) -> Any:
        """Run *fn(supervisor)* on one shard under its lock, 503-typed."""
        shard = self._shards[shard_id]
        if shard.failed:
            self.metrics.counter("sharded.unavailable").inc()
            raise ShardUnavailableError(
                shard_id, "restart budget exhausted (shard failed)"
            )
        if shard.restarting or shard.sup.degraded:
            self.metrics.counter("sharded.unavailable").inc()
            raise ShardUnavailableError(shard_id, "shard restarting")
        if not shard.lock.acquire(timeout=self.query_timeout):
            self.metrics.counter("sharded.unavailable").inc()
            raise ShardUnavailableError(
                shard_id, f"shard busy (> {self.query_timeout:g}s)"
            )
        try:
            try:
                return fn(shard.sup)
            except DegradedError as exc:
                self.metrics.counter("sharded.unavailable").inc()
                raise ShardUnavailableError(shard_id, str(exc)) from exc
        finally:
            shard.lock.release()
            if shard.sup.degraded:
                self._begin_restart(shard)

    def _aggregate_view(self) -> AggregateView:
        """The memoized cross-shard aggregate (page mode's query engine).

        Runs the partial-weight exchange when stale: flush every shard,
        have each publish its ``w'``/``P'``/incidence partials through
        the shm output path, claim and merge them, then threshold and
        score once in an :class:`AggregateView`.  A dead shard raises
        :class:`ShardUnavailableError` — an exchange needs every
        partition, so page-mode aggregate queries 503 until the shard's
        restart completes.
        """
        with self._agg_lock:
            if self._aggregate is not None:
                return self._aggregate
            self.flush()
            with self.metrics.time("sharded.exchange"):
                partials = []
                for shard in self._shards:
                    payload = self._query(
                        shard.sid,
                        lambda sup, sid=shard.sid: sup.partial_state(
                            self._shm_prefix, sid, self.n_shards
                        ),
                    )
                    partials.append(claim_partial_weights(payload))
                merged = merge_partials(partials, self.n_shards)
            self.metrics.counter("sharded.exchanges").inc()
            self.metrics.counter("sharded.exchange_bytes").inc(
                merged.exchange_bytes
            )
            view = AggregateView(merged, self.config)
            self._aggregate = view
            return view

    def shard_for(self, author: str) -> int:
        """The shard authoritative for *author* (the routing rule)."""
        return shard_of(author, self.n_shards)

    def user_score(self, author: str) -> dict:
        """Route :meth:`DetectionEngine.user_score` to the owner shard."""
        with self.metrics.time("sharded.query.user"):
            if self._page_mode:
                return self._aggregate_view().user_score(author)
            sid = self.shard_for(author)
            return self._query(sid, lambda sup: sup.user_score(author))

    def top_k_triplets(self, k: int = 10, by: str = "t") -> list[dict]:
        """Global top-k: gather each shard's owned candidates and merge.

        Page mode runs the same owner-sliced merge over the aggregate:
        each user-hash owner's candidate list comes out of the exchanged
        weights, and :func:`merge_topk` stitches them exactly as in
        replicated mode.
        """
        _merge_key(by)  # validate the ranking before any pipe roundtrip
        if by == "c" and not self.config.compute_hypergraph:
            raise ValueError("ranking by C requires compute_hypergraph=True")
        with self.metrics.time("sharded.query.topk"):
            if self._page_mode:
                view = self._aggregate_view()
                per_owner = [
                    view.owned_top_k(k, by, sid, self.n_shards)
                    for sid in range(self.n_shards)
                ]
                return merge_topk(per_owner, k, by)
            per_shard = [
                self._query(
                    shard.sid,
                    lambda sup, sid=shard.sid: sup.owned_top_k(
                        k, by, sid, self.n_shards
                    ),
                )
                for shard in self._shards
            ]
            return merge_topk(per_shard, k, by)

    def _gather_fragments(self) -> list[dict]:
        if self._page_mode:
            view = self._aggregate_view()
            return [
                view.owned_fragment(sid, self.n_shards)
                for sid in range(self.n_shards)
            ]
        return [
            self._query(
                shard.sid,
                lambda sup, sid=shard.sid: sup.owned_fragment(
                    sid, self.n_shards
                ),
            )
            for shard in self._shards
        ]

    def component_of(self, author: str) -> list[str]:
        """*author*'s cross-shard component via the boundary-edge union."""
        with self.metrics.time("sharded.query.component"):
            return merged_component_of(self._gather_fragments(), author)

    def components(self) -> list[list[str]]:
        """All candidate networks, merged across shards."""
        with self.metrics.time("sharded.query.component"):
            return merge_components(
                self._gather_fragments(), self.config.min_component_size
            )

    def ci_edges(self) -> dict[tuple[str, str], int]:
        """Merged CI pair weights at the cutoff (page mode only).

        The parity harness diffs this against the single-engine oracle's
        :meth:`DetectionEngine.ci_edges`; replicated shards hold full
        engines, so there :meth:`engine_clone` is the richer probe.
        """
        if not self._page_mode:
            raise ValueError("ci_edges() requires ingest_sharding='page'")
        return self._aggregate_view().ci_edges()

    def page_counts(self) -> dict[str, int]:
        """Merged nonzero ``P'`` entries keyed by author name (page mode)."""
        if not self._page_mode:
            raise ValueError("page_counts() requires ingest_sharding='page'")
        return self._aggregate_view().page_counts()

    def engine_clone(self, shard_id: int = 0) -> DetectionEngine:
        """A private :class:`DetectionEngine` cloned from one live shard.

        The child publishes its full state through the shm output path;
        this process claims the segments (copy + unlink) and rehydrates.
        Exactness riders: the clone answers every query identically to
        the shard it came from.  Page-mode shards hold only their page
        slice (under a ledger-only config), so no single shard *has* a
        full engine to clone — use :meth:`ci_edges` / the query facade
        instead.
        """
        if self._page_mode:
            raise ValueError(
                "engine_clone requires ingest_sharding='replicated': "
                "page-partitioned shards each hold only their page slice"
            )
        payload = self._query(
            shard_id, lambda sup: sup.engine_state(self._shm_prefix)
        )
        return claim_engine_state(payload, self.config)

    def status(self) -> dict:
        """Tier health + per-shard status (degraded shards summarized)."""
        shards = []
        for shard in self._shards:
            entry: dict = {
                "shard": shard.sid,
                "up": not (
                    shard.failed or shard.restarting or shard.sup.degraded
                ),
                "failed": shard.failed,
                "restarting": shard.restarting,
                "restarts": shard.restarts,
            }
            if entry["up"]:
                try:
                    entry["status"] = self._query(
                        shard.sid, lambda sup: sup.status()
                    )
                except ShardUnavailableError:
                    entry["up"] = False
            shards.append(entry)
        return {
            "sharded": True,
            "n_shards": self.n_shards,
            "ingest_sharding": self.ingest_sharding,
            "healthy": all(s["up"] for s in shards),
            "shards": shards,
            "metrics": self.metrics.to_dict(),
        }

    def close(self) -> None:
        """Stop every shard and sweep any unclaimed handoff segments."""
        for shard in self._shards:
            self._await_restart(shard)
            with shard.lock:
                shard.sup.close()
        sweep_segments(self._shm_prefix)

    def __enter__(self) -> "ShardedDetectionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
