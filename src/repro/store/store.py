"""One durable-state directory: WAL + snapshot generations together.

:class:`DurableStore` fixes the layout the serve tier persists into::

    <root>/
        wal/         # repro.serve.wal segments (the event journal)
        snapshots/   # repro.store.snapshots generations

and binds the convention that ties them together: **a snapshot
generation's number is its WAL offset** — the sequence number of the
first journal record *not* reflected in that snapshot.  Recovery loads
the newest valid generation ``S`` and replays journal records
``seq >= S``; retention prunes journal segments below the *oldest*
retained generation, so every surviving snapshot keeps a complete replay
suffix (corruption fallback stays possible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.store.engine_state import restore_engine_state
from repro.store.errors import TornWalError
from repro.store.snapshots import SnapshotStore

__all__ = ["DurableStore", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """What one :meth:`DurableStore.recover_engine` call did."""

    #: Generation the engine was rebuilt from (``None`` = cold start).
    snapshot_seq: int | None = None
    #: Newer generations skipped as corrupt: ``(seq, reason)``.
    snapshots_skipped: list[tuple[int, str]] = field(default_factory=list)
    #: Journal records replayed on top of the snapshot.
    records_replayed: int = 0
    #: Events contained in those records.
    events_replayed: int = 0
    #: Whether the journal ended in a dropped torn record.
    torn_tail: bool = False
    #: Records applied in total (== seq of the next journal record).
    applied_seq: int = 0
    #: Highest watermark input seen in the replayed records (restores
    #: the service-level :class:`~repro.serve.ingest.WatermarkTracker`).
    max_event_time: int | None = None
    #: Cumulative events covered by the durable state (stream position a
    #: supervisor resumes delivery from; 0 when the records predate the
    #: counter or on cold start).
    events_durable: int = 0

    @property
    def cold_start(self) -> bool:
        """True when there was nothing on disk to recover from."""
        return self.snapshot_seq is None and self.applied_seq == 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.cold_start:
            return "recovery: cold start (no durable state found)"
        parts = [
            f"snapshot {self.snapshot_seq}"
            if self.snapshot_seq is not None
            else "no snapshot",
            f"{self.records_replayed} record(s) / "
            f"{self.events_replayed} event(s) replayed",
            f"resumed at seq {self.applied_seq}",
        ]
        if self.snapshots_skipped:
            parts.append(
                f"{len(self.snapshots_skipped)} corrupt generation(s) skipped"
            )
        if self.torn_tail:
            parts.append("torn WAL tail dropped")
        return "recovery: " + ", ".join(parts)


class DurableStore:
    """Paths + policy for one serve deployment's durable state."""

    def __init__(self, directory: str | Path, *, keep_snapshots: int = 3) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_dir = self.directory / "wal"
        self.snapshots = SnapshotStore(
            self.directory / "snapshots", keep=keep_snapshots
        )

    def has_state(self) -> bool:
        """Whether anything durable exists to recover from."""
        return bool(self.snapshots.generations()) or bool(
            self.wal_dir.is_dir() and sorted(self.wal_dir.glob("wal-*.log"))
        )

    def open_wal(self, **kwargs):
        """Open the journal for appending (see :class:`WriteAheadLog`)."""
        from repro.serve.wal import WriteAheadLog

        return WriteAheadLog(self.wal_dir, **kwargs)

    def prune_wal(self) -> int:
        """Drop journal segments no retained snapshot needs; returns count."""
        from repro.serve.wal import WriteAheadLog

        generations = self.snapshots.generations()
        if not generations:
            return 0
        with WriteAheadLog(self.wal_dir, fsync="off") as wal:
            return wal.prune_before(min(generations))

    # -- recovery ----------------------------------------------------------
    def recover_engine(
        self, config, *, metrics=None
    ) -> tuple["object", RecoveryReport]:
        """Newest-valid snapshot + exact journal replay → a live engine.

        Implements the full recovery contract: corrupt newest generations
        fall back to older ones, a torn journal tail is dropped, and a
        journal that cannot cover the snapshot's suffix (a pruned or
        vanished segment) raises :class:`TornWalError` rather than
        silently losing applied events.  Returns the engine and a
        :class:`RecoveryReport`.
        """
        from repro.serve.engine import DetectionEngine
        from repro.serve.wal import read_wal, wal_end_state

        report = RecoveryReport()
        loaded = self.snapshots.load_newest_valid()
        if loaded is not None:
            seq, arrays, meta, skipped = loaded
            report.snapshot_seq = seq
            report.snapshots_skipped = skipped
            wm = meta.get("max_event_time")
            report.max_event_time = int(wm) if wm is not None else None
            report.events_durable = int(meta.get("events_journaled", 0))
            engine = restore_engine_state(arrays, meta, config, metrics=metrics)
            start_seq = seq
        else:
            engine = DetectionEngine(config, metrics=metrics)
            start_seq = 0

        if self.wal_dir.is_dir():
            end = wal_end_state(self.wal_dir)
            report.torn_tail = end.torn_tail
            expected = start_seq
            for seq, record in read_wal(self.wal_dir, start_seq=start_seq):
                if seq != expected:
                    raise TornWalError(
                        f"journal cannot cover snapshot suffix: needed seq "
                        f"{expected}, found {seq}"
                    )
                expected = seq + 1
                events = [tuple(e) for e in record.get("events", ())]
                if events:
                    engine.ingest(events)
                cutoff = record.get("cutoff")
                if cutoff is not None:
                    engine.advance(int(cutoff))
                wm = record.get("wm")
                if wm is not None and (
                    report.max_event_time is None
                    or int(wm) > report.max_event_time
                ):
                    report.max_event_time = int(wm)
                acc = record.get("acc")
                if acc is not None:
                    report.events_durable = int(acc)
                report.records_replayed += 1
                report.events_replayed += len(events)
            report.applied_seq = max(start_seq, expected)
        else:
            report.applied_seq = start_seq
        return engine, report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DurableStore({str(self.directory)!r})"
