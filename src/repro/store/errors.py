"""Typed corruption errors for the durability layer.

Every way the on-disk state can be damaged maps to exactly one of these,
so recovery code (and the chaos matrix asserting on it) can distinguish
"tolerate and continue" from "fall back a generation" from "refuse":

- :class:`TornWalError` — the write-ahead log is damaged somewhere other
  than its tail.  A torn *final* record is the expected signature of a
  crash mid-append and is silently dropped by the reader; damage in the
  middle of the sequence (a checksum mismatch with valid records after
  it, a sequence-number gap, a missing segment) means events were lost
  and replay refuses to silently skip them.
- :class:`CorruptSnapshotError` — one snapshot generation failed
  validation (missing/unparseable manifest, checksum mismatch, missing
  or unreadable payload).  Recovery treats this per-generation: the
  newest valid snapshot wins, corrupt ones are reported and skipped.
- :class:`StoreMismatchError` — the data is intact but was written under
  a different configuration (or state format); restoring it would
  silently blend two runs, so it is refused instead.
- :class:`StoreError` — base class, and the catch-all for structural
  problems with the store directory itself.
"""

from __future__ import annotations

__all__ = [
    "CorruptSnapshotError",
    "StoreError",
    "StoreMismatchError",
    "TornWalError",
]


class StoreError(RuntimeError):
    """Base class for durability-layer failures."""


class TornWalError(StoreError):
    """The write-ahead log is damaged beyond its tolerated torn tail."""


class CorruptSnapshotError(StoreError):
    """A snapshot generation failed checksum/manifest validation."""


class StoreMismatchError(StoreError):
    """A restore was attempted against state from a different config."""
