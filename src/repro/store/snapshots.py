"""Versioned, checksummed snapshot generations (manifest + npz payload).

A :class:`SnapshotStore` holds N generations of some subsystem's full
state, each one a directory::

    snap-<seq, 16 digits>/
        manifest.json   # format, seq, payload checksum, caller metadata
        state.npz       # the arrays

Writes are atomic at the generation level: the payload and manifest land
under a temporary directory name, are fsynced, and the directory is
renamed into place in one step — a crash mid-snapshot leaves a ``*.tmp``
orphan (swept on the next save), never a half-valid generation.  Reads
validate the manifest and the payload's SHA-256 before returning;
anything off raises :class:`~repro.store.errors.CorruptSnapshotError`,
and :meth:`load_newest_valid` turns that into generation fallback — the
newest clean snapshot wins, corrupt ones are reported, not fatal.

This generalizes the single-generation stage persistence of
:class:`repro.pipeline.checkpoint.PipelineCheckpoint` into the form the
online serve tier needs (many generations, explicit corruption taxonomy,
retention pruning); the checkpoint keeps its stage-oriented API on top of
the same atomic-write primitives.
"""

from __future__ import annotations

import hashlib
import io
import json
import shutil
from pathlib import Path

import numpy as np

from repro.store.errors import CorruptSnapshotError
from repro.util.io import atomic_write_bytes, fsync_dir, fsync_path

__all__ = ["SnapshotStore"]

_FORMAT = 1
_MANIFEST = "manifest.json"
_PAYLOAD = "state.npz"


def _generation_name(seq: int) -> str:
    return f"snap-{seq:016d}"


class SnapshotStore:
    """One directory of snapshot generations (see module docstring).

    Parameters
    ----------
    directory:
        Root of the store (created if missing).
    keep:
        Generations retained after each :meth:`save` (>= 1).  Older ones
        are pruned — but never the generation a fallback would need
        next: pruning keeps the *newest* ``keep``.

    Examples
    --------
    >>> import tempfile, numpy as np
    >>> store = SnapshotStore(tempfile.mkdtemp(), keep=2)
    >>> store.save(3, {"xs": np.arange(4)}, {"note": "first"})
    >>> store.save(9, {"xs": np.arange(9)}, {"note": "second"})
    >>> store.generations()
    [9, 3]
    >>> seq, arrays, meta, skipped = store.load_newest_valid()
    >>> seq, int(arrays["xs"].sum()), meta["note"], skipped
    (9, 36, 'second', [])
    """

    def __init__(self, directory: str | Path, *, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    # -- writes ------------------------------------------------------------
    def save(self, seq: int, arrays: dict, meta: dict) -> Path:
        """Persist one generation atomically; prunes past ``keep``.

        *arrays* is any mapping acceptable to ``np.savez`` (object arrays
        allowed — names are arbitrary keys); *meta* must be
        JSON-serializable and is returned verbatim on load.
        """
        final = self.directory / _generation_name(seq)
        tmp = self.directory / (_generation_name(seq) + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        payload = buf.getvalue()
        (tmp / _PAYLOAD).write_bytes(payload)
        fsync_path(tmp / _PAYLOAD)
        manifest = {
            "format": _FORMAT,
            "seq": int(seq),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "meta": meta,
        }
        atomic_write_bytes(
            tmp / _MANIFEST,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
            durable=True,
        )
        if final.exists():  # re-snapshot at the same seq: replace whole
            shutil.rmtree(final)
        tmp.rename(final)
        fsync_dir(self.directory)
        self._prune()
        self._sweep_tmp()
        return final

    def _prune(self) -> None:
        for seq in self.generations()[self.keep:]:
            shutil.rmtree(
                self.directory / _generation_name(seq), ignore_errors=True
            )

    def _sweep_tmp(self) -> None:
        for orphan in self.directory.glob("snap-*.tmp"):
            shutil.rmtree(orphan, ignore_errors=True)

    # -- reads -------------------------------------------------------------
    def generations(self) -> list[int]:
        """Present generation seqs, newest first (no validation)."""
        seqs = []
        for path in self.directory.glob("snap-*"):
            if path.suffix == ".tmp" or not path.is_dir():
                continue
            try:
                seqs.append(int(path.name.split("-", 1)[1]))
            except ValueError:
                continue
        return sorted(seqs, reverse=True)

    def load(self, seq: int) -> tuple[dict, dict]:
        """Load and validate one generation → ``(arrays, meta)``.

        Raises :class:`CorruptSnapshotError` naming the failure mode on
        any damage (missing files, unparseable manifest, wrong seq,
        checksum mismatch, unreadable payload).
        """
        gen = self.directory / _generation_name(seq)

        def corrupt(detail: str) -> CorruptSnapshotError:
            return CorruptSnapshotError(f"snapshot {gen.name}: {detail}")

        try:
            manifest = json.loads((gen / _MANIFEST).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise corrupt("manifest missing") from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise corrupt(f"manifest unparseable ({exc})") from exc
        if manifest.get("format") != _FORMAT:
            raise corrupt(f"unknown format {manifest.get('format')!r}")
        if manifest.get("seq") != seq:
            raise corrupt(f"manifest seq {manifest.get('seq')!r} != {seq}")
        try:
            payload = (gen / _PAYLOAD).read_bytes()
        except FileNotFoundError:
            raise corrupt("payload missing") from None
        digest = hashlib.sha256(payload).hexdigest()
        if digest != manifest.get("payload_sha256"):
            raise corrupt("payload checksum mismatch")
        try:
            with np.load(io.BytesIO(payload), allow_pickle=True) as data:
                arrays = {name: data[name] for name in data.files}
        except Exception as exc:  # checksum passed but npz still broken
            raise corrupt(f"payload unreadable ({exc})") from exc
        return arrays, manifest.get("meta", {})

    def load_newest_valid(
        self,
    ) -> tuple[int, dict, dict, list[tuple[int, str]]] | None:
        """The newest generation that validates, falling back on corruption.

        Returns ``(seq, arrays, meta, skipped)`` where *skipped* lists
        ``(seq, reason)`` for every newer generation that failed
        validation, or ``None`` when no generation is loadable at all.
        """
        skipped: list[tuple[int, str]] = []
        for seq in self.generations():
            try:
                arrays, meta = self.load(seq)
            except CorruptSnapshotError as exc:
                skipped.append((seq, str(exc)))
                continue
            return seq, arrays, meta, skipped
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gens = self.generations()
        return (
            f"SnapshotStore({str(self.directory)!r}, "
            f"generations={gens[:3]}{'…' if len(gens) > 3 else ''})"
        )
