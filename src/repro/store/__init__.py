"""Durable state for long-running detection: snapshots + recovery.

The batch tier checkpoints *stages* (:mod:`repro.pipeline.checkpoint`);
the serve tier needs more — a process that can die at any instant and
come back **bit-identical**.  This package is that durability layer:

- :mod:`repro.store.snapshots` — :class:`SnapshotStore`, N atomic
  checksummed generations of ``manifest.json`` + ``state.npz``;
- :mod:`repro.store.engine_state` — the
  :class:`~repro.serve.engine.DetectionEngine` ⇄ arrays codec (interners
  in id order, live comments in page order, filter bookkeeping);
- :mod:`repro.store.store` — :class:`DurableStore`, one directory
  combining the snapshot generations with the write-ahead journal of
  :mod:`repro.serve.wal`, plus the exact-replay recovery routine
  (newest valid snapshot, generation fallback on corruption, journal
  suffix replay, torn-tail tolerance);
- :mod:`repro.store.errors` — the corruption taxonomy
  (:class:`TornWalError`, :class:`CorruptSnapshotError`,
  :class:`StoreMismatchError`).

``repro-botnets serve --durable DIR`` and the recovery chaos matrix
(``repro.verify.chaos.run_recovery_chaos``) are the two drivers.
"""

from repro.store.errors import (
    CorruptSnapshotError,
    StoreError,
    StoreMismatchError,
    TornWalError,
)
from repro.store.engine_state import (
    config_fingerprint,
    engine_state_arrays,
    restore_engine_state,
)
from repro.store.snapshots import SnapshotStore
from repro.store.store import DurableStore, RecoveryReport

__all__ = [
    "CorruptSnapshotError",
    "DurableStore",
    "RecoveryReport",
    "SnapshotStore",
    "StoreError",
    "StoreMismatchError",
    "TornWalError",
    "config_fingerprint",
    "engine_state_arrays",
    "restore_engine_state",
]
