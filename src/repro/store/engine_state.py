"""Serialize / rehydrate the full :class:`DetectionEngine` state.

The engine's exactness contract makes its snapshot format small: every
derived store (CI weights, ``P'`` ledger, thresholded adjacency,
triangle scores) is a pure function of the projector's live corpus, so a
generation persists only the irreducible state —

- both interner key sequences **in id order, including dead ids** (the
  id space's width feeds ``P'`` array sizing, so dropping dead rows
  would change byte-level outputs);
- the live comments, grouped per page in the projector's page insertion
  order with row order preserved (reprojection re-sorts rows by time
  with a stable sort, so replaying the stored order reproduces the
  in-memory order bit-for-bit);
- the eviction cutoff and the author-filter bookkeeping (removed names
  in first-seen order — :class:`~repro.graph.filters.FilterReport`
  exposes that order).

Rehydration rebuilds the projector from those and then reuses the
engine's own compaction rebuild path
(:meth:`DetectionEngine._rebuild_from_projector`), which the online
parity tests already pin as query-identical to incrementally maintained
state.
"""

from __future__ import annotations

import numpy as np

from repro.store.errors import StoreMismatchError
from repro.util.ids import Interner

__all__ = [
    "config_fingerprint",
    "engine_state_arrays",
    "restore_engine_state",
]

STATE_FORMAT = 1


def config_fingerprint(config) -> dict:
    """The config facts a snapshot's state depends on (mismatch = refuse)."""
    return {
        "window": [config.window.delta1, config.window.delta2],
        "min_triangle_weight": config.min_triangle_weight,
        "min_component_size": config.min_component_size,
        "compute_hypergraph": config.compute_hypergraph,
        "filter_names": sorted(config.author_filter.exact_names),
        "filter_patterns": list(config.author_filter.name_patterns),
    }


def engine_state_arrays(engine) -> tuple[dict, dict]:
    """Flatten a live engine into ``(arrays, meta)`` for a snapshot store."""
    proj = engine.proj
    page_order: list[int] = []
    users: list[int] = []
    pages: list[int] = []
    times: list[int] = []
    for pid, rows in proj._comments.items():
        page_order.append(pid)
        for uid, t in rows:
            users.append(uid)
            pages.append(pid)
            times.append(t)
    arrays = {
        "user_keys": np.asarray(list(proj.user_names), dtype=object),
        "page_keys": np.asarray(list(proj.page_names), dtype=object),
        "page_order": np.asarray(page_order, dtype=np.int64),
        "comment_user": np.asarray(users, dtype=np.int64),
        "comment_page": np.asarray(pages, dtype=np.int64),
        "comment_time": np.asarray(times, dtype=np.int64),
        "filtered_names": np.asarray(list(engine._filtered_names), dtype=object),
    }
    meta = {
        "state_format": STATE_FORMAT,
        "fingerprint": config_fingerprint(engine.config),
        "evict_cutoff": engine.evict_cutoff,
        "filtered_comments": engine._filtered_comments,
        "n_comments": engine.n_live_comments,
        "auto_compact": engine.auto_compact,
        "compact_ratio": engine.compact_ratio,
        "compact_min": engine.compact_min,
    }
    return arrays, meta


def restore_engine_state(arrays: dict, meta: dict, config, *, metrics=None):
    """Rebuild a :class:`DetectionEngine` from one snapshot generation.

    *config* must match the fingerprint the snapshot was taken under
    (:class:`StoreMismatchError` otherwise — durability must never
    silently blend two configurations).
    """
    from repro.serve.engine import DetectionEngine

    if meta.get("state_format") != STATE_FORMAT:
        raise StoreMismatchError(
            f"snapshot state format {meta.get('state_format')!r} != {STATE_FORMAT}"
        )
    expected = config_fingerprint(config)
    found = meta.get("fingerprint")
    if found != expected:
        raise StoreMismatchError(
            f"snapshot was taken under a different config: {found} != {expected}"
        )

    engine = DetectionEngine(
        config,
        metrics=metrics,
        auto_compact=bool(meta.get("auto_compact", True)),
        compact_ratio=float(meta.get("compact_ratio", 4.0)),
        compact_min=int(meta.get("compact_min", 1024)),
    )
    proj = engine.proj
    proj.user_names = Interner(arrays["user_keys"].tolist())
    proj.page_names = Interner(arrays["page_keys"].tolist())
    comments: dict[int, list[tuple[int, int]]] = {
        int(pid): [] for pid in arrays["page_order"].tolist()
    }
    for uid, pid, t in zip(
        arrays["comment_user"].tolist(),
        arrays["comment_page"].tolist(),
        arrays["comment_time"].tolist(),
    ):
        comments[pid].append((uid, t))
    proj._comments = comments
    for pid, rows in comments.items():
        if rows:
            proj._reproject_page(pid)

    cutoff = meta.get("evict_cutoff")
    engine.evict_cutoff = int(cutoff) if cutoff is not None else None
    filtered = [str(name) for name in arrays["filtered_names"].tolist()]
    engine._filtered_names = {name: None for name in filtered}
    engine._filter_cache = {name: True for name in filtered}
    engine._filtered_comments = int(meta.get("filtered_comments", 0))
    engine._rebuild_from_projector()
    return engine
