"""Window-parameter selection — the paper's open question (§3.2.3).

"A way to predict or determine the best parameters has not been studied
and may be a good direction for future research."  This module studies
it with two data-driven tools:

- :func:`delay_profile` — the distribution of same-page inter-comment
  delays, the quantity the window ``(δ1, δ2)`` actually thresholds.
  Burst coordination lives in the left tail; organic replies spread over
  hours.
- :func:`recommend_windows` — candidate windows at the delay
  distribution's quantiles, each annotated with a *pre-projection cost
  prediction* (:func:`repro.projection.project.estimate_pair_volume` —
  two binary-search passes, no pair materialization), so an analyst can
  pick the widest window their memory budget allows, before paying for
  any projection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.projection.project import estimate_pair_volume
from repro.projection.window import TimeWindow
from repro.util.grouping import group_boundaries

__all__ = ["DelayProfile", "WindowRecommendation", "delay_profile",
           "recommend_windows"]


@dataclass(frozen=True)
class DelayProfile:
    """Summary of same-page consecutive inter-comment delays.

    Attributes
    ----------
    n_delays:
        Number of consecutive comment gaps measured.
    quantiles:
        ``{q: delay_seconds}`` at the requested quantiles.
    fast_fraction:
        Fraction of gaps at or under 60 s (burst-pressure indicator).
    """

    n_delays: int
    quantiles: dict[float, int]
    fast_fraction: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        qs = ", ".join(
            f"q{int(q * 100)}={d}s" for q, d in sorted(self.quantiles.items())
        )
        return (
            f"{self.n_delays:,} same-page gaps; {qs}; "
            f"{self.fast_fraction:.1%} within 60s"
        )


def delay_profile(
    btm: BipartiteTemporalMultigraph,
    quantiles: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9),
) -> DelayProfile:
    """Measure the same-page consecutive-delay distribution.

    Consecutive gaps (not all pairs) keep the measurement linear in the
    comment count while still characterizing page tempo.

    Examples
    --------
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p", 0), ("b", "p", 30), ("c", "p", 90)]
    ... )
    >>> delay_profile(btm).n_delays
    2
    """
    _users, pages, times, _b = btm.page_sorted_view()
    if pages.shape[0] == 0:
        return DelayProfile(0, {q: 0 for q in quantiles}, 0.0)
    bounds = group_boundaries(pages)
    gaps = np.diff(times)
    # Drop the gaps that straddle page boundaries.
    boundary_positions = bounds[1:-1] - 1
    keep = np.ones(gaps.shape[0], dtype=bool)
    keep[boundary_positions] = False
    gaps = gaps[keep]
    if gaps.shape[0] == 0:
        return DelayProfile(0, {q: 0 for q in quantiles}, 0.0)
    return DelayProfile(
        n_delays=int(gaps.shape[0]),
        quantiles={
            q: int(np.quantile(gaps, q)) for q in quantiles
        },
        fast_fraction=float(np.mean(gaps <= 60)),
    )


@dataclass(frozen=True)
class WindowRecommendation:
    """One candidate window with its predicted cost.

    Attributes
    ----------
    window:
        The candidate ``(0, δ2)`` window.
    rationale:
        Which delay quantile (or floor) produced it.
    predicted_pairs:
        Upper bound on candidate pairs the projection would materialize.
    relative_cost:
        ``predicted_pairs`` normalized by the cheapest recommendation.
    """

    window: TimeWindow
    rationale: str
    predicted_pairs: int
    relative_cost: float


def recommend_windows(
    btm: BipartiteTemporalMultigraph,
    quantiles: tuple[float, ...] = (0.25, 0.5, 0.75),
    floor_seconds: int = 60,
) -> list[WindowRecommendation]:
    """Candidate windows at delay quantiles, costed before projecting.

    Always includes the *floor* window (default 60 s — the paper's
    burst-detection setting) and one window per requested quantile of the
    same-page delay distribution, deduplicated and sorted by width.
    """
    profile = delay_profile(btm, quantiles=quantiles)
    candidates: dict[int, str] = {int(floor_seconds): "floor (burst nets)"}
    for q, delay in profile.quantiles.items():
        delta2 = max(int(delay), floor_seconds)
        candidates.setdefault(delta2, f"delay q{int(q * 100)}")

    recs = []
    for delta2 in sorted(candidates):
        window = TimeWindow(0, delta2)
        recs.append(
            (window, candidates[delta2], estimate_pair_volume(btm, window))
        )
    cheapest = max(min(r[2] for r in recs), 1)
    return [
        WindowRecommendation(
            window=w,
            rationale=why,
            predicted_pairs=pairs,
            relative_cost=pairs / cheapest,
        )
        for w, why, pairs in recs
    ]
