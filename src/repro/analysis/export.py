"""Graph exports for visualization tools.

The paper renders its discovered networks (Figures 1–2) with Cytoscape.
This module writes detected components as Graphviz DOT and as edge-list
CSV so the same renders can be produced with standard tooling
(``dot -Tpng``, Cytoscape's table import, Gephi).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.pipeline.results import ComponentReport, PipelineResult

__all__ = [
    "component_to_dot",
    "result_to_dot",
    "top_triplets_rows",
    "write_component_csv",
]


def _quote(name: str) -> str:
    return '"' + name.replace("\\", "\\\\").replace('"', '\\"') + '"'


def component_to_dot(
    result: PipelineResult,
    component: ComponentReport,
    label: str | None = None,
) -> str:
    """Render one component as an undirected DOT graph.

    Edge thickness (``penwidth``) scales with ``w'`` relative to the
    component's weight range, mirroring how the paper's figures encode
    interaction strength.

    Examples
    --------
    >>> # doctest-style sketch; see tests for an executable example
    >>> # dot = component_to_dot(result, result.components[0])
    """
    csr = result.ci_thresholded.to_csr()
    member_set = set(component.members)
    lines = ["graph component {"]
    if label:
        lines.append(f"  label={_quote(label)};")
    lines.append("  node [shape=ellipse, fontsize=10];")
    for v in component.members:
        lines.append(f"  {_quote(result.ci.author_name(v))};")
    w_lo = max(component.weight_min, 1)
    w_hi = max(component.weight_max, w_lo + 1)
    for v in component.members:
        for nbr, w in zip(csr.neighbors(v), csr.neighbor_weights(v)):
            nbr = int(nbr)
            if nbr in member_set and nbr > v:
                width = 1.0 + 3.0 * (int(w) - w_lo) / (w_hi - w_lo)
                lines.append(
                    f"  {_quote(result.ci.author_name(v))} -- "
                    f"{_quote(result.ci.author_name(nbr))} "
                    f'[label="{int(w)}", penwidth={width:.2f}];'
                )
    lines.append("}")
    return "\n".join(lines)


def result_to_dot(
    result: PipelineResult, directory: str | Path, max_components: int = 20
) -> list[Path]:
    """Write each detected component to ``<directory>/component_<i>.dot``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for i, component in enumerate(result.components[:max_components]):
        path = directory / f"component_{i:02d}.dot"
        path.write_text(
            component_to_dot(
                result, component, label=f"component {i} (n={component.size})"
            ),
            encoding="utf-8",
        )
        written.append(path)
    return written


def write_component_csv(
    result: PipelineResult, path: str | Path, components: Sequence[int] | None = None
) -> int:
    """Write component edges as CSV (``source,target,weight,component``).

    The Cytoscape/Gephi-friendly flat format; returns the edge row count.
    """
    csr = result.ci_thresholded.to_csr()
    selected = (
        range(len(result.components)) if components is None else components
    )
    rows = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("source,target,weight,component\n")
        for idx in selected:
            component = result.components[idx]
            member_set = set(component.members)
            for v in component.members:
                for nbr, w in zip(csr.neighbors(v), csr.neighbor_weights(v)):
                    nbr = int(nbr)
                    if nbr in member_set and nbr > v:
                        fh.write(
                            f"{result.ci.author_name(v)},"
                            f"{result.ci.author_name(nbr)},{int(w)},{idx}\n"
                        )
                        rows += 1
    return rows


def top_triplets_rows(
    result: PipelineResult, k: int, by: str = "t"
) -> list[dict]:
    """The *k* highest-scoring triplets of a run, as name-keyed rows.

    Produces exactly the row shape (and ordering: descending score,
    lexicographic author-triple tie-break) that
    :meth:`repro.serve.engine.DetectionEngine.top_k_triplets` returns
    live, so batch reports and online monitoring output are directly
    comparable.  ``by`` ranks by ``"t"`` (eq. 7), ``"c"`` (eq. 4,
    requires the run to have computed the hypergraph step), or
    ``"min_weight"``.
    """
    if by not in ("t", "c", "min_weight"):
        raise ValueError(f"unknown ranking {by!r} (use t, c, min_weight)")
    tm = result.triplet_metrics
    if by == "c" and tm is None:
        raise ValueError("ranking by C requires compute_hypergraph=True")
    t = result.triangles
    name = result.ci.author_name
    rows = []
    for i in range(t.n_triangles):
        weights = (int(t.w_ab[i]), int(t.w_ac[i]), int(t.w_bc[i]))
        rows.append(
            {
                "authors": tuple(
                    sorted(
                        str(name(int(x))) for x in (t.a[i], t.b[i], t.c[i])
                    )
                ),
                "min_weight": min(weights),
                "weights": tuple(sorted(weights)),
                "t": float(result.t_scores[i]),
                "w_xyz": int(tm.w_xyz[i]) if tm is not None else 0,
                "p_sum": int(tm.p_sum[i]) if tm is not None else 0,
                "c": float(tm.c_scores[i]) if tm is not None else 0.0,
            }
        )
    rows.sort(key=lambda r: (-r[by], r["authors"]))
    return rows[: max(int(k), 0)]
