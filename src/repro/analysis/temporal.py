"""Temporal behaviour signatures — testing the paper's §1.2 hypothesis.

"The hypothesis of this project is that the structure of the coordinated
behavior will be measurably different than single-user interaction."
The detection pipeline exploits one such difference (windowed
co-commenting); this module measures two more, used to *confirm*
candidate groups after detection:

- :func:`synchrony_score` — the fraction of a group's comments placed
  within a short window of another member's comment on the same page.
  Command-driven bots approach 1; rate-limited humans sit low.
- :func:`response_delay_stats` — how quickly members comment after a
  page's first comment.  Reshare bots react in seconds; organic replies
  spread over hours (the page-hotness tail).
- :func:`hourly_profile` — activity by hour of day.  Scripted fleets run
  flat around the clock; human populations are diurnal.  Summarized by
  the normalized entropy of the 24-bin histogram (1.0 = perfectly flat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph

__all__ = [
    "synchrony_score",
    "response_delay_stats",
    "hourly_profile",
    "DelayStats",
    "HourlyProfile",
]


def _member_mask(
    btm: BipartiteTemporalMultigraph, members: Sequence[int]
) -> np.ndarray:
    ids = np.asarray(sorted({int(m) for m in members}), dtype=np.int64)
    return np.isin(btm.users, ids)


def synchrony_score(
    btm: BipartiteTemporalMultigraph,
    members: Sequence[int],
    window_seconds: int = 60,
) -> float:
    """Fraction of the group's comments within *window_seconds* of another
    member's comment on the same page.

    Examples
    --------
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p", 0), ("b", "p", 30), ("c", "q", 10_000)]
    ... )
    >>> synchrony_score(btm, [0, 1, 2], 60)
    0.6666666666666666
    """
    mask = _member_mask(btm, members)
    if not mask.any():
        return 0.0
    users = btm.users[mask]
    pages = btm.pages[mask]
    times = btm.times[mask]
    order = np.lexsort((times, pages))
    users, pages, times = users[order], pages[order], times[order]

    n = times.shape[0]
    synced = np.zeros(n, dtype=bool)
    # Within each page run, a comment is synchronized if a *different*
    # member's comment lies within the window on either side.
    start = 0
    while start < n:
        stop = start
        while stop < n and pages[stop] == pages[start]:
            stop += 1
        t = times[start:stop]
        u = users[start:stop]
        k = stop - start
        for i in range(k):
            lo = int(np.searchsorted(t, t[i] - window_seconds, side="left"))
            hi = int(np.searchsorted(t, t[i] + window_seconds, side="right"))
            if np.any(u[lo:hi] != u[i]):
                synced[start + i] = True
        start = stop
    return float(synced.mean())


@dataclass(frozen=True)
class DelayStats:
    """Distribution of response delays after each page's first comment."""

    n_responses: int
    median: float
    p90: float
    mean: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_responses:,} responses; median={self.median:.0f}s, "
            f"p90={self.p90:.0f}s, mean={self.mean:.0f}s"
        )


def response_delay_stats(
    btm: BipartiteTemporalMultigraph, members: Sequence[int]
) -> DelayStats:
    """Delays of members' comments relative to each page's first comment.

    The page's first comment may be anyone's (the "share"); only
    members' follow-ups count as responses.
    """
    if btm.n_comments == 0:
        return DelayStats(0, float("nan"), float("nan"), float("nan"))
    order = np.lexsort((btm.times, btm.pages))
    pages = btm.pages[order]
    times = btm.times[order]
    users = btm.users[order]
    first_time = times[
        np.concatenate(([True], pages[1:] != pages[:-1]))
    ]
    page_run = np.cumsum(
        np.concatenate(([0], (pages[1:] != pages[:-1]).astype(np.int64)))
    )
    delays = times - first_time[page_run]
    member_ids = np.asarray(sorted({int(m) for m in members}), dtype=np.int64)
    sel = np.isin(users, member_ids) & (delays > 0)
    chosen = delays[sel].astype(np.float64)
    if chosen.shape[0] == 0:
        return DelayStats(0, float("nan"), float("nan"), float("nan"))
    return DelayStats(
        n_responses=int(chosen.shape[0]),
        median=float(np.median(chosen)),
        p90=float(np.percentile(chosen, 90)),
        mean=float(chosen.mean()),
    )


@dataclass(frozen=True)
class HourlyProfile:
    """24-bin activity histogram with a flatness summary.

    Attributes
    ----------
    counts:
        Comments per hour-of-day bin.
    flatness:
        Normalized entropy of the histogram in ``[0, 1]``; 1.0 means
        activity is spread perfectly evenly over the day (scripted),
        lower values mean concentration (diurnal humans).
    """

    counts: np.ndarray
    flatness: float

    @property
    def peak_hour(self) -> int:
        return int(np.argmax(self.counts))


def hourly_profile(
    btm: BipartiteTemporalMultigraph, members: Sequence[int] | None = None
) -> HourlyProfile:
    """Hour-of-day activity histogram for a group (or everyone)."""
    if members is None:
        times = btm.times
    else:
        times = btm.times[_member_mask(btm, members)]
    hours = (times % 86400) // 3600
    counts = np.bincount(hours.astype(np.int64), minlength=24)[:24]
    total = counts.sum()
    if total == 0:
        return HourlyProfile(counts=counts, flatness=0.0)
    p = counts / total
    nonzero = p[p > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    return HourlyProfile(counts=counts, flatness=entropy / np.log(24))
