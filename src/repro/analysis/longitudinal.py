"""Longitudinal comparison — tracking networks across analysis months.

The thesis analyses two months (January 2020, October 2016) and compares
them by eye.  In deployment the same pipeline runs every month, and the
question becomes *which coordinated networks persist, grow, or appear*.
:func:`match_runs` aligns the detected components of two runs by
account-name overlap (Jaccard) and classifies each network's fate —
giving the monitoring loop its month-over-month diff.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.results import PipelineResult

__all__ = ["NetworkMatch", "RunComparison", "match_runs"]


@dataclass(frozen=True)
class NetworkMatch:
    """One earlier-run component matched against the later run.

    Attributes
    ----------
    earlier_index, later_index:
        Component positions in their respective runs (``later_index`` is
        ``None`` for dissolved networks).
    jaccard:
        Name-set Jaccard similarity of the matched pair.
    members_kept, members_gone, members_new:
        Account names retained, departed, and newly joined.
    """

    earlier_index: int
    later_index: int | None
    jaccard: float
    members_kept: tuple[str, ...]
    members_gone: tuple[str, ...]
    members_new: tuple[str, ...]

    @property
    def fate(self) -> str:
        """``persisted`` / ``reshaped`` / ``dissolved``."""
        if self.later_index is None:
            return "dissolved"
        return "persisted" if self.jaccard >= 0.5 else "reshaped"


@dataclass
class RunComparison:
    """The month-over-month diff of two pipeline runs.

    Attributes
    ----------
    matches:
        One entry per earlier-run component, in earlier-run order.
    emerged:
        Later-run component indices with no earlier counterpart.
    """

    matches: list[NetworkMatch]
    emerged: list[int]

    def summary(self) -> str:
        """One-line census of network fates."""
        fates = {"persisted": 0, "reshaped": 0, "dissolved": 0}
        for m in self.matches:
            fates[m.fate] += 1
        return (
            f"{fates['persisted']} persisted, {fates['reshaped']} reshaped, "
            f"{fates['dissolved']} dissolved, {len(self.emerged)} emerged"
        )


def match_runs(
    earlier: PipelineResult,
    later: PipelineResult,
    min_jaccard: float = 0.1,
) -> RunComparison:
    """Match the components of two runs by member-name overlap.

    Greedy best-first matching on Jaccard similarity (each later component
    is consumed by at most one earlier component); pairs below
    *min_jaccard* are not matched.

    Examples
    --------
    A network whose accounts persist across months is matched with high
    Jaccard; a new botnet shows up in ``emerged``.
    """
    earlier_sets = [frozenset(c.member_names) for c in earlier.components]
    later_sets = [frozenset(c.member_names) for c in later.components]

    candidates: list[tuple[float, int, int]] = []
    for i, a in enumerate(earlier_sets):
        for j, b in enumerate(later_sets):
            union = len(a | b)
            if union == 0:
                continue
            jac = len(a & b) / union
            if jac >= min_jaccard:
                candidates.append((jac, i, j))
    candidates.sort(key=lambda t: (-t[0], t[1], t[2]))

    assigned_earlier: dict[int, tuple[int, float]] = {}
    used_later: set[int] = set()
    for jac, i, j in candidates:
        if i in assigned_earlier or j in used_later:
            continue
        assigned_earlier[i] = (j, jac)
        used_later.add(j)

    matches: list[NetworkMatch] = []
    for i, a in enumerate(earlier_sets):
        if i in assigned_earlier:
            j, jac = assigned_earlier[i]
            b = later_sets[j]
            matches.append(
                NetworkMatch(
                    earlier_index=i,
                    later_index=j,
                    jaccard=jac,
                    members_kept=tuple(sorted(a & b)),
                    members_gone=tuple(sorted(a - b)),
                    members_new=tuple(sorted(b - a)),
                )
            )
        else:
            matches.append(
                NetworkMatch(
                    earlier_index=i,
                    later_index=None,
                    jaccard=0.0,
                    members_kept=(),
                    members_gone=tuple(sorted(a)),
                    members_new=(),
                )
            )
    emerged = [j for j in range(len(later_sets)) if j not in used_later]
    return RunComparison(matches=matches, emerged=emerged)
