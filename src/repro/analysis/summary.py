"""One-call markdown analysis reports.

Packages a pipeline run (plus optional ground truth) into the analyst
deliverable: run configuration, size accounting, component census with
temporal confirmation signatures, figure statistics, and timings.  Used
by ``repro-botnets detect --report``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.components import census_components
from repro.analysis.figures import score_figure, weight_figure
from repro.analysis.report import format_table
from repro.analysis.temporal import response_delay_stats, synchrony_score
from repro.datagen.ground_truth import GroundTruth, score_detection
from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.pipeline.results import PipelineResult

__all__ = ["render_markdown_report", "write_markdown_report"]


def render_markdown_report(
    result: PipelineResult,
    btm: BipartiteTemporalMultigraph | None = None,
    truth: GroundTruth | None = None,
    max_components: int = 12,
) -> str:
    """Render a full analysis report as markdown text.

    Parameters
    ----------
    result:
        The pipeline run to report.
    btm:
        The analysed corpus; enables the temporal-confirmation columns
        (synchrony, response delay) in the component table.
    truth:
        Ground-truth labels; enables per-botnet scoring.
    """
    lines: list[str] = [
        "# Coordination analysis report",
        "",
        f"**Configuration:** {result.config.describe()}",
        "",
        "## Run summary",
        "",
        "```",
        result.summary(),
        "```",
        "",
        "## Candidate networks",
        "",
    ]

    census = census_components(result, truth)
    rows = []
    for c in census[:max_components]:
        row = c.row()
        if btm is not None:
            row["sync@60s"] = round(
                synchrony_score(btm, c.report.members, 60), 2
            )
            delays = response_delay_stats(btm, c.report.members)
            row["med delay"] = (
                f"{delays.median:.0f}s" if delays.n_responses else "-"
            )
        rows.append(row)
    lines.append("```")
    lines.append(format_table(rows))
    lines.append("```")
    if len(census) > max_components:
        lines.append(f"\n({len(census) - max_components} more components omitted)")

    if truth is not None and truth.botnets:
        lines += ["", "## Ground-truth scoring", ""]
        scores = score_detection(truth, result.component_name_lists())
        lines.append("```")
        lines.append(
            format_table(
                [
                    {
                        "botnet": name,
                        "precision": s.precision,
                        "recall": s.recall,
                        "F1": s.f1,
                        "component": s.matched_component
                        if s.matched_component is not None
                        else "-",
                    }
                    for name, s in sorted(scores.items())
                ]
            )
        )
        lines.append("```")

    if result.triplet_metrics is not None and result.n_triangles:
        sf = score_figure(result)
        wf = weight_figure(result)
        lines += [
            "",
            "## Metric relationships",
            "",
            f"- C vs T: {sf.describe()}",
            f"- w_xyz vs min w': {wf.describe()}",
        ]

    lines += [
        "",
        "## Timings",
        "",
        "```",
        result.timings.format(),
        "```",
        "",
    ]
    return "\n".join(lines)


def write_markdown_report(
    path: str | Path,
    result: PipelineResult,
    btm: BipartiteTemporalMultigraph | None = None,
    truth: GroundTruth | None = None,
) -> Path:
    """Write :func:`render_markdown_report` output to *path*."""
    path = Path(path)
    path.write_text(
        render_markdown_report(result, btm=btm, truth=truth), encoding="utf-8"
    )
    return path
