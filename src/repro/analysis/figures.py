"""The paper's two hexbin figure families, as data.

Figures 3/5/7/9 plot the hypergraph coordination score ``C(x, y, z)``
(y-axis) against the CI-graph triangle score ``T(x, y, z)`` (x-axis);
Figures 4/6/8/10 plot the triplet hyperedge weight ``w_xyz`` (y) against
the minimum triangle weight (x).  Both use log-scaled bin colors with
empty bins blank, and are read against the ``y = x`` diagonal.

Here each figure is a dataclass holding the raw point arrays, the binned
log counts, the Pearson/Spearman correlations the paper describes
qualitatively ("there appears to be a positive relationship"), and the
fraction of mass above the diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.results import PipelineResult
from repro.util.stats import (
    Hist2D,
    binned_log_counts,
    fraction_above_diagonal,
    pearson,
    spearman,
)

__all__ = ["ScoreFigure", "WeightFigure", "score_figure", "weight_figure"]


@dataclass(frozen=True)
class ScoreFigure:
    """Figure 3/5/7/9 content: ``C`` (y) vs ``T`` (x) per triplet."""

    t_scores: np.ndarray
    c_scores: np.ndarray
    hist: Hist2D
    pearson_r: float
    spearman_r: float
    above_diagonal: float

    @property
    def n_triplets(self) -> int:
        return int(self.t_scores.shape[0])

    def describe(self) -> str:
        """One-line numeric summary (what the paper reads off the plot)."""
        return (
            f"n={self.n_triplets}, pearson={self.pearson_r:.3f}, "
            f"spearman={self.spearman_r:.3f}, "
            f"P[C > T]={self.above_diagonal:.3f}, "
            f"occupied bins={self.hist.occupied_bins}"
        )


@dataclass(frozen=True)
class WeightFigure:
    """Figure 4/6/8/10 content: ``w_xyz`` (y) vs min triangle weight (x)."""

    min_weights: np.ndarray
    w_xyz: np.ndarray
    hist: Hist2D
    pearson_r: float
    spearman_r: float
    above_diagonal: float
    omitted_extreme: tuple[int, int, int] | None

    @property
    def n_triplets(self) -> int:
        return int(self.min_weights.shape[0])

    def describe(self) -> str:
        """One-line numeric summary."""
        extreme = (
            f", omitted extreme edge weights={self.omitted_extreme}"
            if self.omitted_extreme
            else ""
        )
        return (
            f"n={self.n_triplets}, pearson={self.pearson_r:.3f}, "
            f"spearman={self.spearman_r:.3f}, "
            f"P[w_xyz > min w']={self.above_diagonal:.3f}{extreme}"
        )


def score_figure(result: PipelineResult, bins: int = 40) -> ScoreFigure:
    """Build the ``C`` vs ``T`` figure from a pipeline run.

    Both scores are bounded in ``[0, 1]``, so the bin grid is fixed to the
    unit square for comparability across windows (how the paper compares
    Figures 5, 7, and 9).
    """
    if result.triplet_metrics is None:
        raise ValueError(
            "pipeline must run with compute_hypergraph=True for score figures"
        )
    t = np.asarray(result.t_scores, dtype=np.float64)
    c = np.asarray(result.triplet_metrics.c_scores, dtype=np.float64)
    hist = binned_log_counts(t, c, bins=bins, x_range=(0, 1), y_range=(0, 1))
    return ScoreFigure(
        t_scores=t,
        c_scores=c,
        hist=hist,
        pearson_r=pearson(t, c),
        spearman_r=spearman(t, c),
        above_diagonal=fraction_above_diagonal(t, c),
    )


def weight_figure(
    result: PipelineResult,
    bins: int = 40,
    omit_extreme_above: int | None = None,
) -> WeightFigure:
    """Build the ``w_xyz`` vs min-triangle-weight figure from a pipeline run.

    Parameters
    ----------
    omit_extreme_above:
        When set, triangles whose minimum weight exceeds this value are
        dropped from the *plot* (their edge weights are reported in
        ``omitted_extreme``) — reproducing the paper's removal of the
        (4460, 5516, 13355) reply-bot triangle from Figure 4; correlations
        are computed on the plotted points, as the paper's figure shows.
    """
    if result.triplet_metrics is None:
        raise ValueError(
            "pipeline must run with compute_hypergraph=True for weight figures"
        )
    minw = result.triangles.min_weights().astype(np.float64)
    w = result.triplet_metrics.w_xyz.astype(np.float64)

    omitted: tuple[int, int, int] | None = None
    if omit_extreme_above is not None and minw.shape[0]:
        extreme_mask = minw > omit_extreme_above
        if np.any(extreme_mask):
            i = int(np.argmax(minw))
            omitted = (
                int(result.triangles.w_ab[i]),
                int(result.triangles.w_ac[i]),
                int(result.triangles.w_bc[i]),
            )
            keep = ~extreme_mask
            minw, w = minw[keep], w[keep]

    hist = binned_log_counts(minw, w, bins=bins)
    return WeightFigure(
        min_weights=minw,
        w_xyz=w,
        hist=hist,
        pearson_r=pearson(minw, w),
        spearman_r=spearman(minw, w),
        above_diagonal=fraction_above_diagonal(minw, w),
        omitted_extreme=omitted,
    )
