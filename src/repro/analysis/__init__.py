"""Figure and report computation.

The thesis's evaluation artifacts are (a) network visualisations of
discovered components (Figures 1–2) and (b) 2-D log-scaled histograms
comparing common-interaction-graph metrics with hypergraph metrics
(Figures 3–10).  This package computes the *numbers behind those plots*:

- :mod:`~repro.analysis.figures` — the two hexbin figure families
  (``C`` vs ``T`` scores; ``w_xyz`` vs min triangle weight) with
  correlations and the y=x diagonal comparison.
- :mod:`~repro.analysis.components` — the component census used for the
  network figures: sizes, edge-weight ranges, density, clique bounds,
  ground-truth labels.
- :mod:`~repro.analysis.report` — fixed-width table rendering for
  benchmark output and EXPERIMENTS.md.
"""

from repro.analysis.figures import (
    ScoreFigure,
    WeightFigure,
    score_figure,
    weight_figure,
)
from repro.analysis.components import ComponentCensus, census_components
from repro.analysis.report import format_table
from repro.analysis.parameters import (
    DelayProfile,
    WindowRecommendation,
    delay_profile,
    recommend_windows,
)
from repro.analysis.temporal import (
    DelayStats,
    HourlyProfile,
    hourly_profile,
    response_delay_stats,
    synchrony_score,
)
from repro.analysis.summary import render_markdown_report, write_markdown_report
from repro.analysis.evidence import EvidencePage, coordination_evidence
from repro.analysis.longitudinal import NetworkMatch, RunComparison, match_runs

__all__ = [
    "ScoreFigure",
    "WeightFigure",
    "score_figure",
    "weight_figure",
    "ComponentCensus",
    "census_components",
    "format_table",
    "DelayProfile",
    "WindowRecommendation",
    "delay_profile",
    "recommend_windows",
    "DelayStats",
    "HourlyProfile",
    "hourly_profile",
    "response_delay_stats",
    "synchrony_score",
    "render_markdown_report",
    "write_markdown_report",
    "EvidencePage",
    "coordination_evidence",
    "NetworkMatch",
    "RunComparison",
    "match_runs",
]
