"""Coordination evidence — the pages where a detected group acted.

Detection (Steps 1–3) names *who*; moderation needs *where and when*.
For a candidate group, :func:`coordination_evidence` recovers every page
carrying an in-window co-comment burst by group members — the concrete,
reviewable artifacts behind each CI edge — ordered by how much of the
group participated.  This is the hand-off the paper describes to "content
moderators or existing bot detection methods" (§4.2): each evidence row
is one page a human can open and judge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.projection.window import TimeWindow

__all__ = ["EvidencePage", "coordination_evidence"]


@dataclass(frozen=True)
class EvidencePage:
    """One page where the group co-commented inside the window.

    Attributes
    ----------
    page:
        Page id (or platform name when the BTM carries a page interner).
    participants:
        Group members with an in-window co-comment on the page, sorted.
    first_time, last_time:
        Span of the participating members' burst comments.
    n_comments:
        Group comments on the page inside the burst.
    """

    page: int | str
    participants: tuple[int, ...]
    first_time: int
    last_time: int
    n_comments: int

    @property
    def n_participants(self) -> int:
        return len(self.participants)

    @property
    def span_seconds(self) -> int:
        return self.last_time - self.first_time


def coordination_evidence(
    btm: BipartiteTemporalMultigraph,
    members: Sequence[int],
    window: TimeWindow,
    min_participants: int = 2,
) -> list[EvidencePage]:
    """Pages where ≥ *min_participants* members co-comment in-window.

    A member's comment counts as participating when another member's
    comment on the same page lies within the window of it (the same
    pairing rule as Algorithm 1, restricted to the group).

    Returns evidence sorted by participant count (descending), then page.

    Examples
    --------
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p", 0), ("b", "p", 30), ("c", "p", 5000),
    ...      ("a", "q", 0), ("x", "q", 10)]
    ... )
    >>> ev = coordination_evidence(btm, [0, 1, 2], TimeWindow(0, 60))
    >>> (ev[0].page, ev[0].participants)
    ('p', (0, 1))
    """
    member_ids = np.asarray(sorted({int(m) for m in members}), dtype=np.int64)
    mask = np.isin(btm.users, member_ids)
    users = btm.users[mask]
    pages = btm.pages[mask]
    times = btm.times[mask]
    order = np.lexsort((times, pages))
    users, pages, times = users[order], pages[order], times[order]

    evidence: list[EvidencePage] = []
    n = users.shape[0]
    start = 0
    while start < n:
        stop = start
        while stop < n and pages[stop] == pages[start]:
            stop += 1
        t = times[start:stop]
        u = users[start:stop]
        k = stop - start
        participating = np.zeros(k, dtype=bool)
        for i in range(k):
            lo = int(np.searchsorted(t, t[i] - window.delta2, side="left"))
            hi = int(np.searchsorted(t, t[i] + window.delta2, side="right"))
            nearby = u[lo:hi]
            gaps = np.abs(t[lo:hi] - t[i])
            ok = (nearby != u[i]) & (gaps >= window.delta1) & (
                gaps <= window.delta2
            )
            if np.any(ok):
                participating[i] = True
        if participating.any():
            who = np.unique(u[participating])
            if who.shape[0] >= min_participants:
                burst_t = t[participating]
                page_id = int(pages[start])
                page_label: int | str = (
                    str(btm.page_names.key_of(page_id))
                    if btm.page_names is not None
                    else page_id
                )
                evidence.append(
                    EvidencePage(
                        page=page_label,
                        participants=tuple(int(v) for v in who),
                        first_time=int(burst_t.min()),
                        last_time=int(burst_t.max()),
                        n_comments=int(participating.sum()),
                    )
                )
        start = stop
    evidence.sort(key=lambda e: (-e.n_participants, str(e.page)))
    return evidence
