"""Fixed-width table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width text table.

    Examples
    --------
    >>> print(format_table([{"a": 1, "b": "x"}, {"a": 20, "b": "yy"}]))
    a   b
    --  --
    1   x
    20  yy
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {col: _fmt(row.get(col, "")) for col in columns} for row in rows
    ]
    widths = {
        col: max(len(col), *(len(r[col]) for r in rendered)) for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns).rstrip()
    rule = "  ".join("-" * widths[col] for col in columns).rstrip()
    body = [
        "  ".join(r[col].ljust(widths[col]) for col in columns).rstrip()
        for r in rendered
    ]
    lines = [header, rule, *body]
    if title:
        lines.insert(0, title)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
