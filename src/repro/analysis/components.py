"""Component census: the numbers behind the network figures (1–2).

For each connected component of the thresholded CI graph the census
records what the paper reads off its Cytoscape renders — member count,
edge-weight range, density / clique structure — and, on synthetic corpora,
attaches the ground-truth label by majority membership.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.ground_truth import GroundTruth
from repro.pipeline.results import ComponentReport, PipelineResult

__all__ = ["ComponentCensus", "census_components"]


@dataclass(frozen=True)
class ComponentCensus:
    """One component's census row.

    Attributes
    ----------
    report:
        The structural description from the pipeline.
    label:
        Majority ground-truth label (``None`` without ground truth;
        ``"organic"`` when most members are unlabelled humans).
    label_purity:
        Fraction of members carrying the majority label.
    """

    report: ComponentReport
    label: str | None
    label_purity: float

    def row(self) -> dict:
        """Flat dict for table rendering."""
        r = self.report
        return {
            "size": r.size,
            "edges": r.n_edges,
            "w_min": r.weight_min,
            "w_max": r.weight_max,
            "density": round(r.density, 3),
            "clique>=": r.max_clique_lower_bound,
            "label": self.label if self.label is not None else "?",
            "purity": round(self.label_purity, 2),
        }


def census_components(
    result: PipelineResult, truth: GroundTruth | None = None
) -> list[ComponentCensus]:
    """Census every detected component, largest first.

    Examples
    --------
    >>> from repro.datagen import RedditDatasetBuilder
    >>> from repro.pipeline import CoordinationPipeline, PipelineConfig
    >>> from repro.projection import TimeWindow
    >>> ds = RedditDatasetBuilder.jan2020_like(seed=3, scale=0.2).build()
    >>> res = CoordinationPipeline(PipelineConfig(
    ...     window=TimeWindow(0, 60), min_triangle_weight=25,
    ...     compute_hypergraph=False)).run(ds.btm)
    >>> census = census_components(res, ds.truth)
    >>> any(c.label == "gpt2" for c in census)
    True
    """
    out: list[ComponentCensus] = []
    for report in result.components:
        label: str | None = None
        purity = 0.0
        if truth is not None:
            votes: dict[str, int] = {}
            for name in report.member_names:
                member_label = truth.label_of(name) or "organic"
                votes[member_label] = votes.get(member_label, 0) + 1
            label, count = max(votes.items(), key=lambda kv: kv[1])
            purity = count / max(report.size, 1)
        out.append(
            ComponentCensus(report=report, label=label, label_purity=purity)
        )
    return out
