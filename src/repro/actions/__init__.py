"""Pluggable co-action layers: extractors, bucketing, and score fusion.

The paper's framework is behaviour-agnostic — "the same action within
time *t*" — and this package supplies the *action* half of that sentence.
:mod:`repro.actions.base` defines the :class:`ActionKey` extractor
protocol and the layer registry; :mod:`repro.actions.keys` provides the
built-in layers (page, link, reply, hashtag, text);
:mod:`repro.actions.textbucket` implements the minhash-LSH bucketing the
text layer rides on; and :mod:`repro.actions.fuse` combines per-layer CI
graphs into one multi-layer coordination score.

See ``docs/action_layers.md`` for the full tour.
"""

from repro.actions.base import (
    ACTION_LAYERS,
    ActionKey,
    available_layers,
    get_action_key,
    register_action_key,
    resolve_layers,
)
from repro.actions.fuse import (
    FusedEdge,
    FusedGraph,
    fuse_edge_maps,
    fuse_layers,
)
from repro.actions.keys import (
    HashtagKey,
    LinkKey,
    PageKey,
    ReplyTargetKey,
    TextBucketKey,
    normalize_hashtag,
    normalize_url,
)
from repro.actions.textbucket import MinHashBucketer

__all__ = [
    "ACTION_LAYERS",
    "ActionKey",
    "available_layers",
    "get_action_key",
    "register_action_key",
    "resolve_layers",
    "FusedEdge",
    "FusedGraph",
    "fuse_layers",
    "fuse_edge_maps",
    "PageKey",
    "LinkKey",
    "ReplyTargetKey",
    "HashtagKey",
    "TextBucketKey",
    "normalize_url",
    "normalize_hashtag",
    "MinHashBucketer",
]
