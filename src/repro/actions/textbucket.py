"""Near-duplicate-text bucketing: shingles → minhash → LSH band buckets.

Copypasta campaigns post the *same* text with small mutations (emoji,
urls, padding), so exact-string grouping misses them.  The standard
locality-sensitive-hashing recipe makes near-duplicates collide:

1. **Normalize** — casefold, strip everything but word characters,
   collapse whitespace; small cosmetic edits vanish here.
2. **Shingle** — the set of ``shingle_size``-word windows of the
   normalized text (character fallback for shorter texts).
3. **Minhash** — for each of ``n_hashes`` seeded hash functions keep the
   minimum shingle hash; two texts' minhash signatures agree per
   coordinate with probability equal to their shingle-set Jaccard
   similarity.
4. **Band** — split the signature into ``n_bands`` bands of
   ``n_hashes // n_bands`` rows; each band hashes to one *bucket id*.
   Texts identical in any band share that bucket.

Each band bucket is one **action value**: posting text in bucket ``b``
is "the same action" as any other post in ``b``, so the untouched
windowed-pair machinery turns shared buckets into CI edges.  A pair of
near-duplicate posts colliding in several bands earns one co-action per
band — more weight for closer duplicates, which is the right monotone.

Everything is seeded ``zlib.crc32`` arithmetic: byte-identical across
runs, interpreters, and machines (the builtin ``hash`` is salted per
process and would scatter buckets across restarts).
"""

from __future__ import annotations

import re
import zlib

__all__ = ["MinHashBucketer"]

_WORDS = re.compile(r"[^\w]+", re.UNICODE)


def _crc(seed: int, data: bytes) -> int:
    """A cheap seeded 32-bit hash (crc32 chained through the seed)."""
    return zlib.crc32(data, seed) & 0xFFFFFFFF


class MinHashBucketer:
    """Deterministic minhash-LSH bucketing of short texts.

    Parameters
    ----------
    n_hashes:
        Signature length (must be divisible by *n_bands*).
    n_bands:
        LSH bands; more bands = more recall, less precision.  The
        defaults (16 hashes × 4 bands of 4 rows) put the collision
        S-curve's knee near Jaccard ≈ 0.7 — template copypasta with a
        few mutated words collides, organic prose does not.
    shingle_size:
        Words per shingle; texts shorter than this fall back to
        character shingles of the same length so tiny texts still
        bucket deterministically.
    seed:
        Folded into every hash function; distinct seeds give
        independent bucketings.

    Examples
    --------
    >>> b = MinHashBucketer()
    >>> a = b.buckets("Buy cheap followers NOW at spam.example dot com!!!")
    >>> c = b.buckets("buy CHEAP followers now at spam.example dot com")
    >>> bool(set(a) & set(c))
    True
    """

    def __init__(
        self,
        n_hashes: int = 16,
        n_bands: int = 4,
        shingle_size: int = 3,
        seed: int = 0x5EED,
    ) -> None:
        if n_hashes <= 0 or n_bands <= 0 or n_hashes % n_bands:
            raise ValueError(
                f"n_hashes ({n_hashes}) must be a positive multiple of "
                f"n_bands ({n_bands})"
            )
        if shingle_size <= 0:
            raise ValueError(f"shingle_size must be > 0, got {shingle_size}")
        self.n_hashes = int(n_hashes)
        self.n_bands = int(n_bands)
        self.rows = self.n_hashes // self.n_bands
        self.shingle_size = int(shingle_size)
        self.seed = int(seed)
        # One crc seed per hash function, derived deterministically.
        self._seeds = [
            _crc(self.seed, f"minhash:{i}".encode()) for i in range(n_hashes)
        ]

    def normalize(self, text: str) -> str:
        """Casefolded, punctuation-free, whitespace-collapsed form."""
        return " ".join(_WORDS.split(str(text).casefold())).strip()

    def shingles(self, text: str) -> set[bytes]:
        """Word shingles of the normalized text (char fallback)."""
        norm = self.normalize(text)
        if not norm:
            return set()
        words = norm.split(" ")
        k = self.shingle_size
        if len(words) >= k:
            return {
                " ".join(words[i : i + k]).encode()
                for i in range(len(words) - k + 1)
            }
        # Short text: character shingles keep tiny payloads bucketable.
        if len(norm) <= k:
            return {norm.encode()}
        return {norm[i : i + k].encode() for i in range(len(norm) - k + 1)}

    def signature(self, text: str) -> tuple[int, ...] | None:
        """The minhash signature, or ``None`` for empty/blank text."""
        shingles = self.shingles(text)
        if not shingles:
            return None
        return tuple(
            min(_crc(seed, s) for s in shingles) for seed in self._seeds
        )

    def buckets(self, text: str) -> tuple[str, ...]:
        """LSH band bucket ids for *text* (empty tuple for blank text).

        Bucket ids are short stable strings ``"tb{band}:{hash:08x}"`` —
        they intern into the BTM's action id space like page ids do.
        """
        sig = self.signature(text)
        if sig is None:
            return ()
        out = []
        for band in range(self.n_bands):
            rows = sig[band * self.rows : (band + 1) * self.rows]
            digest = _crc(
                _crc(self.seed, f"band:{band}".encode()),
                ",".join(str(r) for r in rows).encode(),
            )
            out.append(f"tb{band}:{digest:08x}")
        return tuple(out)
