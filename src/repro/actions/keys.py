"""The concrete action keys: page, link, reply, hashtag, text.

Importing this module populates :data:`repro.actions.base.ACTION_LAYERS`
with the five built-in layers.  Each key reads Pushshift-style record
fields (see :class:`repro.datagen.records.CommentRecord` for the
generator side) and normalizes aggressively — coordination hides behind
cosmetic variation, so two records that *mean* the same action must map
to the same value.
"""

from __future__ import annotations

from typing import Mapping
from urllib.parse import urlsplit, urlunsplit

from repro.actions.base import ActionKey, register_action_key
from repro.actions.textbucket import MinHashBucketer

__all__ = [
    "PageKey",
    "LinkKey",
    "ReplyTargetKey",
    "HashtagKey",
    "TextBucketKey",
    "normalize_url",
    "normalize_hashtag",
]


def normalize_url(raw: str) -> str:
    """Canonical form of a shared URL.

    Lowercases scheme/host, folds ``http`` into ``https``, strips the
    fragment, a ``www.`` prefix, and any trailing slash — the mutations
    link-spam tooling applies to dodge exact-match dedup — while keeping
    path and query (different articles on one host are different actions).
    """
    raw = str(raw).strip()
    if not raw:
        return ""
    parts = urlsplit(raw)
    scheme = parts.scheme.casefold()
    if scheme == "http":
        scheme = "https"
    host = parts.netloc.casefold()
    if host.startswith("www."):
        host = host[4:]
    path = parts.path.rstrip("/")
    return urlunsplit((scheme, host, path, parts.query, ""))


def normalize_hashtag(raw: str) -> str:
    """Casefolded tag with any leading ``#`` stripped."""
    return str(raw).strip().lstrip("#").casefold()


class PageKey(ActionKey):
    """The seed behaviour: commenting on the same page (``link_id``)."""

    name = "page"
    fields = ("link_id",)

    def extract(self, record: Mapping) -> tuple[str, ...]:
        page = record.get("link_id")
        if page is None or page == "":
            return ()
        return (str(page),)


class LinkKey(ActionKey):
    """Sharing the same URL (co-link coordination)."""

    name = "link"
    fields = ("link",)

    def extract(self, record: Mapping) -> tuple[str, ...]:
        link = record.get("link")
        if not link:
            return ()
        norm = normalize_url(link)
        return (norm,) if norm else ()


class ReplyTargetKey(ActionKey):
    """Replying to the same comment/author (co-reply coordination)."""

    name = "reply"
    fields = ("reply_to",)

    def extract(self, record: Mapping) -> tuple[str, ...]:
        target = record.get("reply_to")
        if not target:
            return ()
        return (str(target).strip(),)


class HashtagKey(ActionKey):
    """Using the same hashtag (co-hashtag coordination).

    A record carrying several hashtags performs one action per distinct
    normalized tag (sorted, so extraction order never depends on the
    record's tag order).
    """

    name = "hashtag"
    fields = ("hashtags",)

    def extract(self, record: Mapping) -> tuple[str, ...]:
        raw = record.get("hashtags")
        if not raw:
            return ()
        if isinstance(raw, str):
            raw = raw.split()
        tags = {normalize_hashtag(t) for t in raw}
        tags.discard("")
        return tuple(sorted(tags))


class TextBucketKey(ActionKey):
    """Posting near-duplicate text (minhash LSH band buckets).

    See :class:`~repro.actions.textbucket.MinHashBucketer` — each LSH
    band bucket of the record's ``text`` is one action value, so
    near-duplicates co-act once per colliding band.
    """

    name = "text"
    fields = ("text",)

    def __init__(self, bucketer: MinHashBucketer | None = None) -> None:
        self.bucketer = bucketer if bucketer is not None else MinHashBucketer()

    def extract(self, record: Mapping) -> tuple[str, ...]:
        text = record.get("text")
        if not text:
            return ()
        return self.bucketer.buckets(str(text))


# Populate the registry (import side effect, idempotent).
register_action_key(PageKey())
register_action_key(LinkKey())
register_action_key(ReplyTargetKey())
register_action_key(HashtagKey())
register_action_key(TextBucketKey())
