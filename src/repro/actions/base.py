"""The pluggable co-action axis: ``ActionKey`` extractors.

The paper's framework detects "the same action within time *t*" — but the
seed pipeline hard-coded one action: commenting on the same page.  An
:class:`ActionKey` makes the action axis injectable.  Each key names one
coordination *layer* and maps a Pushshift-style comment record to the
action values the comment performs on that layer:

==========  =====================  ========================================
layer       record field(s)        two users co-act when they …
==========  =====================  ========================================
page        ``link_id``            comment on the same page (the seed axis)
link        ``link``               share the same (normalized) URL
reply       ``reply_to``           reply to the same comment/author
hashtag     ``hashtags``           use the same hashtag
text        ``text``               post near-duplicate text (minhash bucket)
==========  =====================  ========================================

The extracted value plays exactly the role the page id played: the
``(author, action_value, created_utc)`` triples feed the untouched
:class:`~repro.graph.bipartite.BipartiteTemporalMultigraph` → projection →
triangle machinery, producing one common-interaction graph per layer.

**Skip semantics.**  A record that lacks the field(s) a layer needs (an
ordinary comment with no URL, no hashtags, …) simply performs no action on
that layer: :meth:`ActionKey.extract` returns an empty tuple and lenient
ingestion counts the record in the layer's skip counter instead of
crashing — see :func:`repro.graph.io.btms_from_ndjson`.

A record may perform *several* actions on one layer (three hashtags = three
actions); each value becomes its own BTM edge, exactly as three comments on
three pages would.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "ActionKey",
    "ACTION_LAYERS",
    "get_action_key",
    "register_action_key",
    "available_layers",
    "resolve_layers",
]


class ActionKey:
    """One coordination layer: a named extractor over comment records.

    Subclasses (or instances constructed with an ``extract`` override)
    define :meth:`extract`; everything downstream — BTM construction,
    projection, triangle survey, fusion — is layer-agnostic.

    Attributes
    ----------
    name:
        The layer name (``"page"``, ``"link"``, …); used as the registry
        key, the CLI ``--layers`` token, metric labels, and fusion
        provenance.
    fields:
        The ndjson record fields the extractor reads.  Records missing
        any of them are *skipped on this layer* (never an error): they
        perform no action of this kind.
    """

    name: str = ""
    fields: tuple[str, ...] = ()

    def extract(self, record: Mapping) -> tuple[str, ...]:
        """Action values this record performs on the layer.

        Returns an empty tuple when the record performs no such action
        (missing/blank field).  Values are strings: they are interned
        into the BTM's action id space exactly as page ids are.
        """
        raise NotImplementedError

    def triples(
        self, record: Mapping
    ) -> list[tuple[str, str, int]]:
        """``(author, action_value, created_utc)`` triples for *record*.

        Raises ``KeyError`` / ``ValueError`` when the record lacks the
        *universal* fields (``author``, ``created_utc``) — that is
        malformation, not a layer skip — and returns ``[]`` when the
        record merely performs no action on this layer.
        """
        author = record["author"]
        created = int(record["created_utc"])
        return [(author, value, created) for value in self.extract(record)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


#: The global layer registry, populated by :mod:`repro.actions.keys`.
ACTION_LAYERS: dict[str, ActionKey] = {}


def register_action_key(key: ActionKey) -> ActionKey:
    """Add *key* to the registry (last registration wins); returns it."""
    if not key.name:
        raise ValueError("action key must have a non-empty name")
    ACTION_LAYERS[key.name] = key
    return key


def get_action_key(name_or_key: "str | ActionKey") -> ActionKey:
    """Resolve a layer name (or pass an :class:`ActionKey` through)."""
    if isinstance(name_or_key, ActionKey):
        return name_or_key
    key = ACTION_LAYERS.get(str(name_or_key))
    if key is None:
        raise ValueError(
            f"unknown action layer {name_or_key!r} "
            f"(available: {', '.join(available_layers())})"
        )
    return key


def available_layers() -> list[str]:
    """Registered layer names, sorted (the canonical iteration order)."""
    return sorted(ACTION_LAYERS)


def resolve_layers(
    layers: "Sequence[str | ActionKey]",
) -> "list[ActionKey]":
    """Resolve a layer list, rejecting duplicates, sorted by name.

    Sorting makes every multi-layer surface (pipeline, fusion, metrics,
    reports) independent of the order the caller listed the layers in —
    the determinism contract the fused score relies on.
    """
    keys = [get_action_key(layer) for layer in layers]
    names = [k.name for k in keys]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate action layers in {names}")
    return sorted(keys, key=lambda k: k.name)
