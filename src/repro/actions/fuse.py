"""Fusing per-layer CI graphs into one multi-layer coordination score.

Running the pipeline once per action layer yields one thresholded common
interaction graph per behaviour (co-page, co-link, co-reply, co-hashtag,
co-text).  A campaign that splits its coordination across behaviours —
sharing URLs here, brigading a hashtag there — leaves a weak trace on
every single layer but a strong one on their union.  The fusion rule is
the weighted union of the per-layer CI edges:

    ``fused(a, b) = Σ_layer  weight[layer] · w'_layer(a, b)``

with **per-layer provenance** kept on every fused edge, so an analyst
can always see *which behaviours* produced a fused score.

Edges are joined by author *name* (per-layer graphs intern their own id
spaces; names are the shared key).  Everything is deterministic by
construction: layers are folded in sorted-name order, edges and rankings
sort lexicographically, and ties break on names — the same inputs give a
bit-identical :class:`FusedGraph` regardless of dict iteration order or
the order the caller listed the layers in (enforced by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.projection.ci_graph import CommonInteractionGraph

__all__ = ["FusedEdge", "FusedGraph", "fuse_layers", "fuse_edge_maps"]


@dataclass(frozen=True)
class FusedEdge:
    """One author pair's fused coordination evidence.

    Attributes
    ----------
    a, b:
        Author names, ``a < b`` lexicographically.
    score:
        The weighted sum of per-layer ``w'`` values.
    per_layer:
        ``((layer, w'), …)`` provenance, sorted by layer name; only
        layers where the pair actually has an edge appear.
    """

    a: str
    b: str
    score: float
    per_layer: tuple[tuple[str, int], ...]

    @property
    def n_layers(self) -> int:
        """How many behaviours contribute to this pair."""
        return len(self.per_layer)


@dataclass
class FusedGraph:
    """The weighted union of per-layer CI edges (see module docs).

    Attributes
    ----------
    weights:
        ``((layer, weight), …)`` actually applied, sorted by layer.
    edges:
        All fused edges, sorted by ``(a, b)``.
    """

    weights: tuple[tuple[str, float], ...]
    edges: list[FusedEdge]

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def layer_names(self) -> list[str]:
        """The fused layers, sorted."""
        return [name for name, _w in self.weights]

    def top_edges(self, k: int) -> list[FusedEdge]:
        """The *k* strongest fused edges (score desc, then names asc)."""
        return sorted(self.edges, key=lambda e: (-e.score, e.a, e.b))[: max(k, 0)]

    def user_scores(self) -> dict[str, float]:
        """Per-author fused score: the sum of incident fused edges.

        Folded in sorted-edge order, so float accumulation is
        bit-reproducible.
        """
        scores: dict[str, float] = {}
        for edge in self.edges:
            scores[edge.a] = scores.get(edge.a, 0.0) + edge.score
            scores[edge.b] = scores.get(edge.b, 0.0) + edge.score
        return scores

    def ranking(self) -> list[tuple[str, float]]:
        """Authors by fused score, descending; ties break on the name."""
        return sorted(
            self.user_scores().items(), key=lambda kv: (-kv[1], kv[0])
        )

    def components(self, min_size: int = 2) -> list[list[str]]:
        """Connected components of the fused union graph.

        Each component is a lexicographically sorted member list; the
        list of components sorts by size descending, then members — the
        candidate multi-layer coordination networks.
        """
        adj: dict[str, set[str]] = {}
        for edge in self.edges:
            adj.setdefault(edge.a, set()).add(edge.b)
            adj.setdefault(edge.b, set()).add(edge.a)
        seen: set[str] = set()
        out: list[list[str]] = []
        for root in sorted(adj):
            if root in seen:
                continue
            stack, members = [root], []
            seen.add(root)
            while stack:
                v = stack.pop()
                members.append(v)
                for nbr in adj[v]:
                    if nbr not in seen:
                        seen.add(nbr)
                        stack.append(nbr)
            if len(members) >= min_size:
                out.append(sorted(members))
        out.sort(key=lambda m: (-len(m), m))
        return out

    def summary(self) -> str:
        """One line for reports."""
        layers = ", ".join(
            f"{name}×{weight:g}" for name, weight in self.weights
        )
        multi = sum(1 for e in self.edges if e.n_layers > 1)
        return (
            f"fused graph: {self.n_edges} edges over [{layers}] "
            f"({multi} multi-behaviour)"
        )


def _edge_names(
    ci: CommonInteractionGraph,
) -> Iterable[tuple[str, str, int]]:
    """A CI graph's edges as ``(name_lo, name_hi, w')`` with names sorted."""
    interner = ci.user_names
    src = ci.edges.src.tolist()
    dst = ci.edges.dst.tolist()
    weight = ci.edges.weight.tolist()
    for u, v, w in zip(src, dst, weight):
        a = str(interner.key_of(u)) if interner is not None else str(u)
        b = str(interner.key_of(v)) if interner is not None else str(v)
        if b < a:
            a, b = b, a
        yield a, b, int(w)


def fuse_layers(
    layer_cis: Mapping[str, CommonInteractionGraph],
    weights: Mapping[str, float] | None = None,
) -> FusedGraph:
    """Fuse per-layer (thresholded) CI graphs into one :class:`FusedGraph`.

    Parameters
    ----------
    layer_cis:
        ``{layer name: CI graph}`` — pass the *thresholded* graphs so the
        fusion only unions evidence that already cleared each layer's
        cutoff.  Iteration order of the mapping is irrelevant.
    weights:
        Optional per-layer multipliers (default 1.0 each).  Unknown keys
        are rejected so a typo cannot silently zero a layer.

    Examples
    --------
    >>> from repro.graph.edgelist import EdgeList
    >>> from repro.projection.window import TimeWindow
    >>> from repro.util.ids import Interner
    >>> import numpy as np
    >>> names = Interner(["ann", "bob"])
    >>> ci = CommonInteractionGraph(
    ...     edges=EdgeList(np.array([0]), np.array([1]), np.array([3])),
    ...     page_counts=np.array([1, 1]), window=TimeWindow(0, 60),
    ...     user_names=names)
    >>> fused = fuse_layers({"link": ci, "hashtag": ci})
    >>> fused.edges[0].score, fused.edges[0].per_layer
    (6.0, (('hashtag', 3), ('link', 3)))
    """
    return fuse_edge_maps(
        {
            name: {(a, b): w for a, b, w in _edge_names(ci)}
            for name, ci in layer_cis.items()
        },
        weights=weights,
    )


def fuse_edge_maps(
    layer_edges: Mapping[str, Mapping[tuple[str, str], int]],
    weights: Mapping[str, float] | None = None,
) -> FusedGraph:
    """Fuse per-layer ``{(name_a, name_b): w'}`` edge maps.

    The name-keyed twin of :func:`fuse_layers`, shared with the online
    service (whose per-layer engines expose exactly this edge form).
    Pair keys may arrive in either orientation; they are canonicalized
    to ``a < b``.
    """
    weights = dict(weights) if weights is not None else {}
    unknown = sorted(set(weights) - set(layer_edges))
    if unknown:
        raise ValueError(
            f"fusion weights name unknown layer(s): {unknown} "
            f"(layers: {sorted(layer_edges)})"
        )
    applied = tuple(
        (name, float(weights.get(name, 1.0))) for name in sorted(layer_edges)
    )
    acc: dict[tuple[str, str], tuple[float, list[tuple[str, int]]]] = {}
    for name, layer_weight in applied:
        edge_map = layer_edges[name]
        for (a, b) in sorted(edge_map):
            w = int(edge_map[(a, b)])
            key = (a, b) if a <= b else (b, a)
            score, provenance = acc.get(key, (0.0, []))
            acc[key] = (
                score + layer_weight * w,
                provenance + [(name, w)],
            )
    edges = [
        FusedEdge(a=a, b=b, score=score, per_layer=tuple(provenance))
        for (a, b), (score, provenance) in sorted(acc.items())
    ]
    return FusedGraph(weights=applied, edges=edges)
