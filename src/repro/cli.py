"""Command-line interface — the analyst front door.

Five subcommands cover the workflow the paper describes:

- ``generate`` — synthesize a ground-truth corpus to Pushshift-format
  ndjson (plus a truth JSON for scoring);
- ``recommend`` — profile a corpus's same-page delays and cost candidate
  windows *before* projecting (the §3.2.3 parameter question);
- ``detect`` — run the three-step framework over an ndjson corpus and
  report components, optionally exporting DOT renders;
- ``figures`` — regenerate the paper's metric-relationship figures
  (C vs T, w_xyz vs min w') for a corpus and window;
- ``verify`` — run a seeded corpus through every projection and triangle
  engine, diff the outputs against the reference oracle, and check the
  paper's invariants (the engine-parity guarantee, made executable);
  ``verify --chaos`` instead injects a seeded fault into a distributed
  run and checks the fail-typed → checkpoint-resume → exact-parity
  contract.

``detect`` and ``figures`` accept ``--skip-malformed`` (plus
``--quarantine``) to survive corrupt lines in real-world dumps.

Installed as ``repro-botnets`` (see ``pyproject.toml``); also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import (
    census_components,
    format_table,
    recommend_windows,
    score_figure,
    weight_figure,
)
from repro.analysis.export import result_to_dot
from repro.datagen import GroundTruth, RedditDatasetBuilder, score_detection
from repro.graph import AuthorFilter
from repro.graph.io import btm_from_ndjson, write_comments_ndjson
from repro.pipeline import CoordinationPipeline, PipelineConfig
from repro.projection import TimeWindow

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-botnets",
        description="Coordinated botnet detection via temporal clustering "
        "analysis (Piercey 2023 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="synthesize a ground-truth corpus to ndjson"
    )
    gen.add_argument(
        "--preset",
        choices=["jan2020", "oct2016"],
        default="jan2020",
        help="corpus preset (botnet mix mirrors the paper's months)",
    )
    gen.add_argument("--seed", type=int, default=2020)
    gen.add_argument("--scale", type=float, default=1.0,
                     help="background size multiplier")
    gen.add_argument("--out", required=True, help="output ndjson path")
    gen.add_argument("--truth", help="optional ground-truth JSON path")

    rec = sub.add_parser(
        "recommend", help="profile delays and cost candidate windows"
    )
    rec.add_argument("--input", required=True, help="ndjson corpus")

    det = sub.add_parser("detect", help="run the three-step framework")
    det.add_argument("--input", required=True, help="ndjson corpus")
    det.add_argument("--delta1", type=int, default=0)
    det.add_argument("--delta2", type=int, default=60)
    det.add_argument("--cutoff", type=int, default=25,
                     help="minimum triangle edge weight")
    det.add_argument("--buckets", type=int, default=None,
                     help="time-bucket width for the low-memory projection")
    det.add_argument("--no-filter", action="store_true",
                     help="keep AutoModerator/[deleted] (ablation)")
    det.add_argument("--no-hypergraph", action="store_true",
                     help="skip Step 3 validation")
    det.add_argument("--truth", help="ground-truth JSON for scoring")
    det.add_argument("--export-dot", metavar="DIR",
                     help="write component DOT files to DIR")
    det.add_argument("--report", metavar="PATH",
                     help="write a full markdown analysis report to PATH")
    det.add_argument("--top", type=int, default=15,
                     help="components to list")
    det.add_argument("--skip-malformed", action="store_true",
                     help="skip (and count) malformed ndjson lines instead "
                     "of aborting")
    det.add_argument("--quarantine", metavar="PATH",
                     help="with --skip-malformed, copy rejected lines to "
                     "this sidecar file")

    fig = sub.add_parser(
        "figures", help="regenerate the metric-relationship figures"
    )
    fig.add_argument("--input", required=True, help="ndjson corpus")
    fig.add_argument("--delta1", type=int, default=0)
    fig.add_argument("--delta2", type=int, default=60)
    fig.add_argument("--cutoff", type=int, default=10)
    fig.add_argument("--skip-malformed", action="store_true",
                     help="skip (and count) malformed ndjson lines instead "
                     "of aborting")
    fig.add_argument("--quarantine", metavar="PATH",
                     help="with --skip-malformed, copy rejected lines to "
                     "this sidecar file")

    ver = sub.add_parser(
        "verify",
        help="differential engine-parity run + invariant checks "
        "on a seeded corpus",
    )
    ver.add_argument("--seed", type=int, default=0,
                     help="seed for the generated corpus")
    ver.add_argument("--preset", choices=["jan2020", "oct2016"],
                     default="oct2016")
    ver.add_argument("--scale", type=float, default=0.05,
                     help="background size multiplier (keep small: the "
                     "reference oracle is quadratic per page)")
    ver.add_argument("--delta1", type=int, default=0)
    ver.add_argument("--delta2", type=int, default=60)
    ver.add_argument("--cutoff", type=int, default=5,
                     help="minimum triangle edge weight")
    ver.add_argument("--bucket-width", type=int, default=None,
                     help="bucket width for the bucketed engine "
                     "(default: window/3)")
    ver.add_argument("--no-shrink", action="store_true",
                     help="skip counterexample shrinking on divergence")
    ver.add_argument("--chaos", action="store_true",
                     help="fault-injected parity instead: draw a seeded "
                     "fault plan, run the distributed pipeline under it, "
                     "require a typed failure, resume from the checkpoint, "
                     "and diff against the serial oracle")
    ver.add_argument("--chaos-backend", choices=["mp", "serial"],
                     default="mp",
                     help="world backend for --chaos (mp = real worker "
                     "processes)")
    ver.add_argument("--chaos-ranks", type=int, default=2,
                     help="world size for --chaos")
    ver.add_argument("--chaos-deadline", type=float, default=30.0,
                     help="barrier/exec liveness deadline (s) for --chaos")

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace, out) -> int:
    builder = (
        RedditDatasetBuilder.jan2020_like(seed=args.seed, scale=args.scale)
        if args.preset == "jan2020"
        else RedditDatasetBuilder.oct2016_like(seed=args.seed, scale=args.scale)
    )
    dataset = builder.build()
    count = write_comments_ndjson(
        args.out, (rec.to_pushshift_dict() for rec in dataset.records)
    )
    print(f"wrote {count:,} comments to {args.out}", file=out)
    if args.truth:
        Path(args.truth).write_text(
            json.dumps(
                {
                    "botnets": {
                        k: sorted(v) for k, v in dataset.truth.botnets.items()
                    },
                    "helpful": sorted(dataset.truth.helpful),
                },
                indent=2,
            ),
            encoding="utf-8",
        )
        print(f"wrote ground truth to {args.truth}", file=out)
    return 0


def _cmd_recommend(args: argparse.Namespace, out) -> int:
    btm = btm_from_ndjson(args.input)
    from repro.analysis import delay_profile

    profile = delay_profile(btm)
    print(f"delay profile: {profile.describe()}", file=out)
    rows = [
        {
            "window": str(r.window),
            "basis": r.rationale,
            "predicted pairs": r.predicted_pairs,
            "relative cost": round(r.relative_cost, 1),
        }
        for r in recommend_windows(btm)
    ]
    print(format_table(rows, title="candidate windows:"), file=out)
    return 0


def _load_truth(path: str) -> GroundTruth:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    truth = GroundTruth()
    for name, members in data.get("botnets", {}).items():
        truth.add(name, members)
    truth.helpful = frozenset(data.get("helpful", []))
    return truth


def _load_btm(args: argparse.Namespace, out):
    """Load the input corpus, honoring the lenient-ingestion flags."""
    from repro.graph.io import IngestStats

    if not getattr(args, "skip_malformed", False):
        return btm_from_ndjson(args.input)
    stats = IngestStats()
    btm = btm_from_ndjson(
        args.input, errors="skip", quarantine=args.quarantine, stats=stats
    )
    if stats.malformed:
        where = (
            f" (quarantined to {stats.quarantined_to})"
            if stats.quarantined_to
            else ""
        )
        print(
            f"skipped {stats.malformed:,} malformed record(s) of "
            f"{stats.total_lines:,}{where}",
            file=out,
        )
    return btm


def _cmd_detect(args: argparse.Namespace, out) -> int:
    btm = _load_btm(args, out)
    config = PipelineConfig(
        window=TimeWindow(args.delta1, args.delta2),
        min_triangle_weight=args.cutoff,
        author_filter=AuthorFilter.none() if args.no_filter else AuthorFilter(),
        compute_hypergraph=not args.no_hypergraph,
        time_bucket_width=args.buckets,
    )
    result = CoordinationPipeline(config).run(btm)
    print(result.summary(), file=out)

    truth = _load_truth(args.truth) if args.truth else None
    census = census_components(result, truth)
    print("", file=out)
    print(
        format_table(
            [c.row() for c in census[: args.top]],
            title=f"top {min(args.top, len(census))} components:",
        ),
        file=out,
    )
    if truth is not None:
        scores = score_detection(truth, result.component_name_lists())
        print("", file=out)
        print("ground-truth scoring:", file=out)
        for name, s in sorted(scores.items()):
            print(
                f"  {name:<12} P={s.precision:.2f} R={s.recall:.2f} "
                f"F1={s.f1:.2f}",
                file=out,
            )
    if args.export_dot:
        written = result_to_dot(result, args.export_dot)
        print(f"\nwrote {len(written)} DOT files to {args.export_dot}", file=out)
    if args.report:
        from repro.analysis.summary import write_markdown_report

        write_markdown_report(args.report, result, btm=btm, truth=truth)
        print(f"wrote analysis report to {args.report}", file=out)
    return 0


def _cmd_figures(args: argparse.Namespace, out) -> int:
    btm = _load_btm(args, out)
    config = PipelineConfig(
        window=TimeWindow(args.delta1, args.delta2),
        min_triangle_weight=args.cutoff,
    )
    result = CoordinationPipeline(config).run(btm)
    sf = score_figure(result)
    wf = weight_figure(result)
    print(f"run: {config.describe()} — {result.n_triangles:,} triplets", file=out)
    print(f"\nC vs T (Figures 3/5/7/9 family): {sf.describe()}", file=out)
    print(sf.hist.render(), file=out)
    print(
        f"\nw_xyz vs min w' (Figures 4/6/8/10 family): {wf.describe()}",
        file=out,
    )
    print(wf.hist.render(), file=out)
    return 0


def _cmd_verify(args: argparse.Namespace, out) -> int:
    from repro.projection import project
    from repro.tripoll import survey_triangles, t_scores
    from repro.verify import (
        InvariantViolation,
        check_projection_invariants,
        check_window_monotonicity,
        run_parity,
    )

    builder = (
        RedditDatasetBuilder.jan2020_like(seed=args.seed, scale=args.scale)
        if args.preset == "jan2020"
        else RedditDatasetBuilder.oct2016_like(seed=args.seed, scale=args.scale)
    )
    btm = builder.build().btm
    comments = list(
        zip(btm.users.tolist(), btm.pages.tolist(), btm.times.tolist())
    )
    window = TimeWindow(args.delta1, args.delta2)

    if args.chaos:
        from repro.verify import run_chaos

        chaos_report = run_chaos(
            comments,
            window,
            seed=args.seed,
            min_triangle_weight=args.cutoff,
            n_ranks=args.chaos_ranks,
            backend=args.chaos_backend,
            barrier_deadline=args.chaos_deadline,
        )
        print(chaos_report.describe(), file=out)
        return 0 if chaos_report.ok else 1

    report = run_parity(
        comments,
        window,
        min_edge_weight=args.cutoff,
        bucket_width=args.bucket_width,
        shrink=not args.no_shrink,
    )
    print(report.describe(), file=out)

    proj = project(btm, window)
    triangles = survey_triangles(proj.ci.edges, min_edge_weight=args.cutoff)
    try:
        ran = check_projection_invariants(
            proj.ci,
            triangles=triangles,
            t_values=t_scores(triangles, proj.ci.page_counts),
        )
        check_window_monotonicity(
            btm, window, TimeWindow(window.delta1, window.delta2 * 2)
        )
        ran.append("window_monotonicity")
        print(f"invariants ok: {', '.join(ran)}", file=out)
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATED: {exc}", file=out)
        return 1
    return 0 if report.ok else 1


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "recommend": _cmd_recommend,
        "detect": _cmd_detect,
        "figures": _cmd_figures,
        "verify": _cmd_verify,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
