"""Command-line interface — the analyst front door.

Six subcommands cover the workflow the paper describes:

- ``generate`` — synthesize a ground-truth corpus to Pushshift-format
  ndjson (plus a truth JSON for scoring);
- ``recommend`` — profile a corpus's same-page delays and cost candidate
  windows *before* projecting (the §3.2.3 parameter question);
- ``detect`` — run the three-step framework over an ndjson corpus and
  report components, optionally exporting DOT renders; ``--layers``
  runs one pass per action layer (page, link, reply, hashtag, text) and
  fuses the per-layer CI graphs into one multi-layer score;
- ``figures`` — regenerate the paper's metric-relationship figures
  (C vs T, w_xyz vs min w') for a corpus and window;
- ``verify`` — run a seeded corpus through every projection and triangle
  engine — all thin wrappers over the shared :mod:`repro.kernels` layer
  (see ``docs/architecture.md``) — diff the outputs against the
  reference oracle, and check the paper's invariants (the engine-parity
  guarantee, made executable);
  ``verify --chaos`` instead injects a seeded fault into a distributed
  run and checks the fail-typed → checkpoint-resume → exact-parity
  contract; ``verify --online`` drives a seeded append/advance
  interleaving through the online engine and diffs every query surface
  against from-scratch batch runs; ``verify --sharded`` streams the
  corpus through sharded query tiers at several shard counts and
  requires every merged answer to match the single-engine oracle;
  ``verify --layers`` sweeps every action layer of a seeded multilayer
  corpus through the engine-parity harness, diffs the page layer
  against the pre-refactor path, and checks fusion determinism;
- ``serve`` — tail an ndjson stream (file or ``-`` for stdin) through
  the online detection service: sliding-window eviction at the
  watermark, incremental re-scoring, periodic top-k and metrics output,
  clean shutdown on EOF or SIGINT.  ``--shards N`` fans the stream out
  to N supervised engine shards partitioning the query keyspace by user
  hash; ``--http PORT`` fronts the tier with the stdlib HTTP gateway
  (``/topk``, ``/user/<id>/score``, ``/component/<id>``, ``/status``,
  ``/metrics``); ``--linger`` keeps answering queries after stream end.

``detect`` and ``figures`` accept ``--skip-malformed`` (plus
``--quarantine``) to survive corrupt lines in real-world dumps.

Installed as ``repro-botnets`` (see ``pyproject.toml``); also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import (
    census_components,
    format_table,
    recommend_windows,
    score_figure,
    weight_figure,
)
from repro.analysis.export import result_to_dot
from repro.util.io import atomic_write_text
from repro.datagen import GroundTruth, RedditDatasetBuilder, score_detection
from repro.graph import AuthorFilter
from repro.graph.io import btm_from_ndjson, write_comments_ndjson
from repro.pipeline import CoordinationPipeline, PipelineConfig
from repro.projection import TimeWindow

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-botnets",
        description="Coordinated botnet detection via temporal clustering "
        "analysis (Piercey 2023 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="synthesize a ground-truth corpus to ndjson"
    )
    gen.add_argument(
        "--preset",
        choices=["jan2020", "oct2016", "multilayer"],
        default="jan2020",
        help="corpus preset (botnet mix mirrors the paper's months; "
        "multilayer adds link-spam, hashtag-brigade, and copypasta nets "
        "that coordinate on non-page action layers)",
    )
    gen.add_argument("--seed", type=int, default=2020)
    gen.add_argument("--scale", type=float, default=1.0,
                     help="background size multiplier")
    gen.add_argument("--out", required=True, help="output ndjson path")
    gen.add_argument("--truth", help="optional ground-truth JSON path")

    rec = sub.add_parser(
        "recommend", help="profile delays and cost candidate windows"
    )
    rec.add_argument("--input", required=True, help="ndjson corpus")

    det = sub.add_parser("detect", help="run the three-step framework")
    det.add_argument("--input", required=True, help="ndjson corpus")
    det.add_argument("--delta1", type=int, default=0)
    det.add_argument("--delta2", type=int, default=60)
    det.add_argument("--cutoff", type=int, default=25,
                     help="minimum triangle edge weight")
    det.add_argument("--buckets", type=int, default=None,
                     help="time-bucket width for the low-memory projection")
    det.add_argument("--executor", choices=["serial", "parallel"],
                     default="serial",
                     help="plan executor: serial (in-process) or parallel "
                     "(shared-memory worker pool; bit-identical results)")
    det.add_argument("--workers", type=int, default=0,
                     help="worker-pool size for --executor parallel "
                     "(0 = cpu count)")
    det.add_argument("--no-filter", action="store_true",
                     help="keep AutoModerator/[deleted] (ablation)")
    det.add_argument("--no-hypergraph", action="store_true",
                     help="skip Step 3 validation")
    det.add_argument("--truth", help="ground-truth JSON for scoring")
    det.add_argument("--export-dot", metavar="DIR",
                     help="write component DOT files to DIR")
    det.add_argument("--report", metavar="PATH",
                     help="write a full markdown analysis report to PATH")
    det.add_argument("--top", type=int, default=15,
                     help="components to list")
    det.add_argument("--skip-malformed", action="store_true",
                     help="skip (and count) malformed ndjson lines instead "
                     "of aborting")
    det.add_argument("--quarantine", metavar="PATH",
                     help="with --skip-malformed, copy rejected lines to "
                     "this sidecar file")
    det.add_argument("--layers", metavar="LIST", default=None,
                     help="comma-separated action layers (or 'all'): run "
                     "one framework pass per layer and fuse the CI graphs "
                     "into a multi-layer score (e.g. page,link,hashtag)")
    det.add_argument("--layer-weights", metavar="LIST", default=None,
                     help="with --layers, per-layer fusion multipliers as "
                     "name=weight pairs (e.g. page=1,text=0.5)")

    fig = sub.add_parser(
        "figures", help="regenerate the metric-relationship figures"
    )
    fig.add_argument("--input", required=True, help="ndjson corpus")
    fig.add_argument("--delta1", type=int, default=0)
    fig.add_argument("--delta2", type=int, default=60)
    fig.add_argument("--cutoff", type=int, default=10)
    fig.add_argument("--skip-malformed", action="store_true",
                     help="skip (and count) malformed ndjson lines instead "
                     "of aborting")
    fig.add_argument("--quarantine", metavar="PATH",
                     help="with --skip-malformed, copy rejected lines to "
                     "this sidecar file")

    ver = sub.add_parser(
        "verify",
        help="differential engine-parity run + invariant checks "
        "on a seeded corpus",
    )
    ver.add_argument("--seed", type=int, default=0,
                     help="seed for the generated corpus")
    ver.add_argument("--preset", choices=["jan2020", "oct2016"],
                     default="oct2016")
    ver.add_argument("--scale", type=float, default=0.05,
                     help="background size multiplier (keep small: the "
                     "reference oracle is quadratic per page)")
    ver.add_argument("--delta1", type=int, default=0)
    ver.add_argument("--delta2", type=int, default=60)
    ver.add_argument("--cutoff", type=int, default=5,
                     help="minimum triangle edge weight")
    ver.add_argument("--bucket-width", type=int, default=None,
                     help="bucket width for the bucketed engine "
                     "(default: window/3)")
    ver.add_argument("--executor", choices=["serial", "parallel"],
                     default="serial",
                     help="plan executor for the invariant-check "
                     "projection (the parity sweep always includes the "
                     "parallel backend)")
    ver.add_argument("--workers", type=int, default=2,
                     help="worker-pool size for the parallel engines in "
                     "the sweep (and --executor parallel)")
    ver.add_argument("--no-shrink", action="store_true",
                     help="skip counterexample shrinking on divergence")
    ver.add_argument("--chaos", action="store_true",
                     help="fault-injected parity instead: draw a seeded "
                     "fault plan, run the distributed pipeline under it, "
                     "require a typed failure, resume from the checkpoint, "
                     "and diff against the serial oracle")
    ver.add_argument("--chaos-backend", choices=["mp", "serial"],
                     default="mp",
                     help="world backend for --chaos (mp = real worker "
                     "processes)")
    ver.add_argument("--chaos-ranks", type=int, default=2,
                     help="world size for --chaos")
    ver.add_argument("--chaos-deadline", type=float, default=30.0,
                     help="barrier/exec liveness deadline (s) for --chaos")
    ver.add_argument("--online", action="store_true",
                     help="online parity instead: stream the corpus "
                     "through the serve engine under a seeded "
                     "append/advance interleaving and diff every query "
                     "surface against from-scratch batch runs")
    ver.add_argument("--steps", type=int, default=60,
                     help="interleaved steps for --online")
    ver.add_argument("--check-every", type=int, default=10,
                     help="oracle-diff frequency (steps) for --online")
    ver.add_argument("--sharded", action="store_true",
                     help="sharded parity instead: stream the corpus "
                     "through sharded query tiers at several shard "
                     "counts and diff every merged answer (top-k, user "
                     "scores, components) against the single-engine "
                     "oracle")
    ver.add_argument("--shard-counts", default="1,2,4",
                     help="comma-separated shard counts for --sharded")
    ver.add_argument("--ingest-modes", default="replicated,page",
                     help="comma-separated ingest modes for --sharded "
                     "(replicated fan-out and/or page-hash partitioning "
                     "with the partial-weight exchange)")
    ver.add_argument("--layers", action="store_true",
                     help="multi-layer parity instead: sweep every action "
                     "layer of a seeded multilayer corpus through the full "
                     "engine-parity harness, check the page layer against "
                     "the pre-refactor path byte-for-byte, and require the "
                     "fused score to be identical under layer/weight "
                     "permutations")

    srv = sub.add_parser(
        "serve",
        help="online detection service over an ndjson stream",
    )
    srv.add_argument("--input", required=True,
                     help="ndjson stream (path, or - for stdin)")
    srv.add_argument("--delta1", type=int, default=0)
    srv.add_argument("--delta2", type=int, default=60)
    srv.add_argument("--cutoff", type=int, default=25,
                     help="minimum triangle edge weight")
    srv.add_argument("--horizon", type=int, default=86_400,
                     help="sliding-window width in seconds")
    srv.add_argument("--lateness", type=int, default=0,
                     help="allowed out-of-order lateness in seconds")
    srv.add_argument("--batch-size", type=int, default=512,
                     help="events per engine micro-batch")
    srv.add_argument("--queue-capacity", type=int, default=65_536)
    srv.add_argument("--queue-policy",
                     choices=["reject", "drop-oldest", "drop-newest"],
                     default="reject")
    srv.add_argument("--top", type=int, default=10,
                     help="triplets per periodic report")
    srv.add_argument("--rank-by", choices=["t", "c", "min_weight"],
                     default="t",
                     help="triplet ranking for the periodic report")
    srv.add_argument("--metrics-every", type=int, default=50,
                     help="ticks between periodic reports (0 = final only)")
    srv.add_argument("--max-events", type=int, default=None,
                     help="stop after this many events (default: stream end)")
    srv.add_argument("--no-filter", action="store_true",
                     help="keep AutoModerator/[deleted]")
    srv.add_argument("--no-hypergraph", action="store_true",
                     help="skip Step 3 validation scores")
    srv.add_argument("--status-json", metavar="PATH",
                     help="write the final status() snapshot as JSON")

    dur = srv.add_argument_group(
        "durability", "crash-safe serving (WAL + snapshots, --durable DIR)"
    )
    dur.add_argument("--durable", metavar="DIR", default=None,
                     help="durable store directory; existing state is "
                          "recovered on start (exact replay)")
    dur.add_argument("--fsync", choices=["always", "interval", "off"],
                     default="interval",
                     help="journal fsync policy (power-loss window)")
    dur.add_argument("--fsync-interval", type=int, default=32,
                     help="records between fsyncs under --fsync interval")
    dur.add_argument("--snapshot-every", type=int, default=256,
                     help="journal records between snapshot generations")
    dur.add_argument("--keep-snapshots", type=int, default=3,
                     help="snapshot generations retained for fallback")
    dur.add_argument("--wal-segment-bytes", type=int, default=4 * 1024 * 1024,
                     help="journal segment rotation threshold")

    sup = srv.add_argument_group(
        "supervision", "watchdog child process (--supervise, needs --durable)"
    )
    sup.add_argument("--supervise", action="store_true",
                     help="run the engine in a supervised child that is "
                          "restarted (with recovery) if it dies or hangs")
    sup.add_argument("--heartbeat-timeout", type=float, default=30.0,
                     help="seconds before an unresponsive child is replaced")
    sup.add_argument("--max-restarts", type=int, default=5,
                     help="restarts allowed inside --restart-window before "
                          "degrading to load shedding")
    sup.add_argument("--restart-window", type=float, default=60.0,
                     help="sliding window (seconds) for the restart budget")
    sup.add_argument("--backoff-base", type=float, default=0.1,
                     help="first restart backoff (seconds, doubles each "
                          "consecutive failure)")
    sup.add_argument("--backoff-cap", type=float, default=5.0,
                     help="maximum restart backoff (seconds)")

    net = srv.add_argument_group(
        "sharding / http",
        "horizontally sharded query tier (--shards N) behind a stdlib "
        "HTTP gateway (--http PORT)",
    )
    net.add_argument("--shards", type=int, default=1,
                     help="supervised engine shards partitioning the "
                          "query keyspace by user hash (>1 runs worker "
                          "processes; composes with --durable)")
    net.add_argument("--ingest-sharding", choices=["replicated", "page"],
                     default="replicated",
                     help="event routing across shards: replicated "
                          "(every event to every shard) or page "
                          "(page-hash partitioning; queries answered "
                          "from the cross-shard partial-weight exchange)")
    net.add_argument("--http", type=int, default=None, metavar="PORT",
                     help="serve /topk /user/<id>/score /component/<id> "
                          "/status /metrics over HTTP on this port "
                          "(0 = pick a free port)")
    net.add_argument("--http-host", default="127.0.0.1",
                     help="bind address for --http")
    net.add_argument("--linger", action="store_true",
                     help="after the input stream ends, keep answering "
                          "HTTP queries until SIGINT (needs --http)")

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


_PRESETS = {
    "jan2020": RedditDatasetBuilder.jan2020_like,
    "oct2016": RedditDatasetBuilder.oct2016_like,
    "multilayer": RedditDatasetBuilder.multilayer,
}


def _cmd_generate(args: argparse.Namespace, out) -> int:
    builder = _PRESETS[args.preset](seed=args.seed, scale=args.scale)
    dataset = builder.build()
    count = write_comments_ndjson(
        args.out, (rec.to_pushshift_dict() for rec in dataset.records)
    )
    print(f"wrote {count:,} comments to {args.out}", file=out)
    if args.truth:
        Path(args.truth).write_text(
            json.dumps(
                {
                    "botnets": {
                        k: sorted(v) for k, v in dataset.truth.botnets.items()
                    },
                    "helpful": sorted(dataset.truth.helpful),
                },
                indent=2,
            ),
            encoding="utf-8",
        )
        print(f"wrote ground truth to {args.truth}", file=out)
    return 0


def _cmd_recommend(args: argparse.Namespace, out) -> int:
    btm = btm_from_ndjson(args.input)
    from repro.analysis import delay_profile

    profile = delay_profile(btm)
    print(f"delay profile: {profile.describe()}", file=out)
    rows = [
        {
            "window": str(r.window),
            "basis": r.rationale,
            "predicted pairs": r.predicted_pairs,
            "relative cost": round(r.relative_cost, 1),
        }
        for r in recommend_windows(btm)
    ]
    print(format_table(rows, title="candidate windows:"), file=out)
    return 0


def _load_truth(path: str) -> GroundTruth:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    truth = GroundTruth()
    for name, members in data.get("botnets", {}).items():
        truth.add(name, members)
    truth.helpful = frozenset(data.get("helpful", []))
    return truth


def _load_btm(args: argparse.Namespace, out):
    """Load the input corpus, honoring the lenient-ingestion flags."""
    from repro.graph.io import IngestStats

    if not getattr(args, "skip_malformed", False):
        return btm_from_ndjson(args.input)
    stats = IngestStats()
    btm = btm_from_ndjson(
        args.input, errors="skip", quarantine=args.quarantine, stats=stats
    )
    if stats.malformed:
        where = (
            f" (quarantined to {stats.quarantined_to})"
            if stats.quarantined_to
            else ""
        )
        print(
            f"skipped {stats.malformed:,} malformed record(s) of "
            f"{stats.total_lines:,}{where}",
            file=out,
        )
    return btm


def _parse_layer_weights(spec: str | None) -> tuple[tuple[str, float], ...]:
    if not spec:
        return ()
    pairs = []
    for item in spec.split(","):
        name, _, value = item.partition("=")
        if not name.strip() or not value.strip():
            raise SystemExit(
                f"bad --layer-weights entry {item!r} (want name=weight)"
            )
        pairs.append((name.strip(), float(value)))
    return tuple(pairs)


def _cmd_detect_layers(args: argparse.Namespace, out) -> int:
    """``detect --layers``: one framework pass per layer, plus fusion."""
    from repro.actions import available_layers
    from repro.pipeline import MultiLayerPipeline

    spec = str(args.layers).strip()
    names = (
        available_layers()
        if spec.lower() == "all"
        else [n.strip() for n in spec.split(",") if n.strip()]
    )
    config = PipelineConfig(
        window=TimeWindow(args.delta1, args.delta2),
        min_triangle_weight=args.cutoff,
        author_filter=AuthorFilter.none() if args.no_filter else AuthorFilter(),
        compute_hypergraph=not args.no_hypergraph,
        time_bucket_width=args.buckets,
        executor=args.executor,
        n_workers=args.workers,
        layer_weights=_parse_layer_weights(args.layer_weights),
    )
    pipeline = MultiLayerPipeline(config, layers=names)
    result = pipeline.run_ndjson(
        args.input,
        errors="skip" if args.skip_malformed else "raise",
        quarantine=args.quarantine if args.skip_malformed else None,
    )
    if result.ingest is not None and result.ingest.malformed:
        print(
            f"skipped {result.ingest.malformed:,} malformed record(s) of "
            f"{result.ingest.total_lines:,}",
            file=out,
        )
    print(result.summary(), file=out)

    print("", file=out)
    print("top fused edges:", file=out)
    for edge in result.fused.top_edges(args.top):
        provenance = ", ".join(f"{n}:{w}" for n, w in edge.per_layer)
        print(
            f"  {edge.a} — {edge.b}  fused={edge.score:g}  [{provenance}]",
            file=out,
        )
    if args.truth:
        truth = _load_truth(args.truth)
        scores = score_detection(truth, result.fused_components)
        print("", file=out)
        print("ground-truth scoring (fused components):", file=out)
        for name, s in sorted(scores.items()):
            print(
                f"  {name:<12} P={s.precision:.2f} R={s.recall:.2f} "
                f"F1={s.f1:.2f}",
                file=out,
            )
    return 0


def _cmd_detect(args: argparse.Namespace, out) -> int:
    if args.layers:
        return _cmd_detect_layers(args, out)
    btm = _load_btm(args, out)
    config = PipelineConfig(
        window=TimeWindow(args.delta1, args.delta2),
        min_triangle_weight=args.cutoff,
        author_filter=AuthorFilter.none() if args.no_filter else AuthorFilter(),
        compute_hypergraph=not args.no_hypergraph,
        time_bucket_width=args.buckets,
        executor=args.executor,
        n_workers=args.workers,
    )
    result = CoordinationPipeline(config).run(btm)
    print(result.summary(), file=out)

    truth = _load_truth(args.truth) if args.truth else None
    census = census_components(result, truth)
    print("", file=out)
    print(
        format_table(
            [c.row() for c in census[: args.top]],
            title=f"top {min(args.top, len(census))} components:",
        ),
        file=out,
    )
    if truth is not None:
        scores = score_detection(truth, result.component_name_lists())
        print("", file=out)
        print("ground-truth scoring:", file=out)
        for name, s in sorted(scores.items()):
            print(
                f"  {name:<12} P={s.precision:.2f} R={s.recall:.2f} "
                f"F1={s.f1:.2f}",
                file=out,
            )
    if args.export_dot:
        written = result_to_dot(result, args.export_dot)
        print(f"\nwrote {len(written)} DOT files to {args.export_dot}", file=out)
    if args.report:
        from repro.analysis.summary import write_markdown_report

        write_markdown_report(args.report, result, btm=btm, truth=truth)
        print(f"wrote analysis report to {args.report}", file=out)
    return 0


def _cmd_figures(args: argparse.Namespace, out) -> int:
    btm = _load_btm(args, out)
    config = PipelineConfig(
        window=TimeWindow(args.delta1, args.delta2),
        min_triangle_weight=args.cutoff,
    )
    result = CoordinationPipeline(config).run(btm)
    sf = score_figure(result)
    wf = weight_figure(result)
    print(f"run: {config.describe()} — {result.n_triangles:,} triplets", file=out)
    print(f"\nC vs T (Figures 3/5/7/9 family): {sf.describe()}", file=out)
    print(sf.hist.render(), file=out)
    print(
        f"\nw_xyz vs min w' (Figures 4/6/8/10 family): {wf.describe()}",
        file=out,
    )
    print(wf.hist.render(), file=out)
    return 0


def _cmd_verify(args: argparse.Namespace, out) -> int:
    from repro.projection import project
    from repro.tripoll import survey_triangles, t_scores
    from repro.verify import (
        InvariantViolation,
        check_projection_invariants,
        check_window_monotonicity,
        run_parity,
    )

    if args.layers:
        from repro.verify import run_layer_parity

        dataset = RedditDatasetBuilder.multilayer(
            seed=args.seed, scale=args.scale
        ).build()
        layer_report = run_layer_parity(
            dataset.records,
            TimeWindow(args.delta1, args.delta2),
            min_edge_weight=args.cutoff,
            bucket_width=args.bucket_width,
            parallel_workers=max(1, args.workers),
            shrink=not args.no_shrink,
        )
        print(layer_report.describe(), file=out)
        return 0 if layer_report.ok else 1

    builder = (
        RedditDatasetBuilder.jan2020_like(seed=args.seed, scale=args.scale)
        if args.preset == "jan2020"
        else RedditDatasetBuilder.oct2016_like(seed=args.seed, scale=args.scale)
    )
    btm = builder.build().btm
    comments = list(
        zip(btm.users.tolist(), btm.pages.tolist(), btm.times.tolist())
    )
    window = TimeWindow(args.delta1, args.delta2)

    if args.online:
        from repro.verify import run_online_parity

        named_comments = [
            (
                str(btm.user_names.key_of(u)),
                str(btm.page_names.key_of(p)),
                t,
            )
            for u, p, t in comments
        ]
        online_report = run_online_parity(
            named_comments,
            PipelineConfig(
                window=window,
                min_triangle_weight=args.cutoff,
            ),
            n_steps=args.steps,
            seed=args.seed,
            check_every=args.check_every,
        )
        print(online_report.describe(), file=out)
        return 0 if online_report.ok else 1

    if args.sharded:
        from repro.verify import run_sharded_parity

        named_comments = [
            (
                str(btm.user_names.key_of(u)),
                str(btm.page_names.key_of(p)),
                t,
            )
            for u, p, t in comments
        ]
        counts = tuple(
            int(c) for c in str(args.shard_counts).split(",") if c.strip()
        )
        modes = tuple(
            m.strip()
            for m in str(args.ingest_modes).split(",")
            if m.strip()
        )
        sharded_report = run_sharded_parity(
            named_comments,
            PipelineConfig(
                window=window,
                min_triangle_weight=args.cutoff,
            ),
            shard_counts=counts or (1, 2),
            ingest_modes=modes or ("replicated",),
            seed=args.seed,
        )
        print(sharded_report.describe(), file=out)
        return 0 if sharded_report.ok else 1

    if args.chaos:
        from repro.verify import run_chaos

        chaos_report = run_chaos(
            comments,
            window,
            seed=args.seed,
            min_triangle_weight=args.cutoff,
            n_ranks=args.chaos_ranks,
            backend=args.chaos_backend,
            barrier_deadline=args.chaos_deadline,
        )
        print(chaos_report.describe(), file=out)
        return 0 if chaos_report.ok else 1

    report = run_parity(
        comments,
        window,
        min_edge_weight=args.cutoff,
        bucket_width=args.bucket_width,
        parallel_workers=max(1, args.workers),
        shrink=not args.no_shrink,
    )
    print(report.describe(), file=out)

    if args.executor == "parallel":
        from repro.exec import ParallelExecutor

        with ParallelExecutor(args.workers or None) as ex:
            proj = project(btm, window, executor=ex)
    else:
        proj = project(btm, window)
    triangles = survey_triangles(proj.ci.edges, min_edge_weight=args.cutoff)
    try:
        ran = check_projection_invariants(
            proj.ci,
            triangles=triangles,
            t_values=t_scores(triangles, proj.ci.page_counts),
        )
        check_window_monotonicity(
            btm, window, TimeWindow(window.delta1, window.delta2 * 2)
        )
        ran.append("window_monotonicity")
        print(f"invariants ok: {', '.join(ran)}", file=out)
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATED: {exc}", file=out)
        return 1
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace, out) -> int:
    from contextlib import nullcontext

    from repro.serve import DetectionService, DurableDetectionService

    config = PipelineConfig(
        window=TimeWindow(args.delta1, args.delta2),
        min_triangle_weight=args.cutoff,
        author_filter=AuthorFilter.none() if args.no_filter else AuthorFilter(),
        compute_hypergraph=not args.no_hypergraph,
    )
    if args.shards > 1 or args.http is not None:
        return _serve_sharded(args, config, out)
    if args.linger:
        print("--linger requires --http PORT", file=out)
        return 2
    if args.supervise:
        if not args.durable:
            print("--supervise requires --durable DIR", file=out)
            return 2
        return _serve_supervised(args, config, out)
    sink = _StatusSink(args, out)
    if args.durable:
        service = DurableDetectionService(
            config,
            directory=args.durable,
            fsync=args.fsync,
            fsync_interval=args.fsync_interval,
            snapshot_every=args.snapshot_every,
            keep_snapshots=args.keep_snapshots,
            wal_segment_bytes=args.wal_segment_bytes,
            window_horizon=args.horizon,
            allowed_lateness=args.lateness,
            batch_size=args.batch_size,
            queue_capacity=args.queue_capacity,
            queue_policy=args.queue_policy,
        )
        print(service.recovery.describe(), file=out)
    else:
        service = DetectionService(
            config,
            window_horizon=args.horizon,
            allowed_lateness=args.lateness,
            batch_size=args.batch_size,
            queue_capacity=args.queue_capacity,
            queue_policy=args.queue_policy,
        )

    def report_top(header: str) -> None:
        print(header, file=out)
        rows = service.engine.top_k_triplets(args.top, by=args.rank_by)
        if not rows:
            print("  (no triplets above the cutoff)", file=out)
        for row in rows:
            x, y, z = row["authors"]
            print(
                f"  {x} / {y} / {z}  "
                f"min_w'={row['min_weight']} T={row['t']:.4f} "
                f"w_xyz={row['w_xyz']} C={row['c']:.4f}",
                file=out,
            )

    def on_tick(svc, report) -> None:
        ticks = svc.metrics.counter("service.ticks").value
        if args.metrics_every and ticks % args.metrics_every == 0:
            status = svc.status()
            print(
                f"[tick {ticks}] live={status['live_comments']:,} "
                f"pages={status['live_pages']:,} "
                f"edges={status['thresholded_edges']:,} "
                f"triangles={status['triangles']:,} "
                f"watermark={status['watermark']} "
                f"queue={status['queue_depth']}",
                file=out,
            )
            report_top(f"[tick {ticks}] top {args.top} by {args.rank_by}:")

    sink.bind(service.status)
    try:
        source = (
            nullcontext(sys.stdin)
            if args.input == "-"
            else open(args.input, "r", encoding="utf-8")
        )
        with source as lines:
            consumed = service.run_ndjson(
                lines, on_tick=on_tick, max_events=args.max_events
            )

        status = service.status()
        sink.bind(status)
        interrupted = service.metrics.counter("service.interrupted").value
        why = "interrupt" if interrupted else "end of stream"
        print(f"\nshutdown ({why}): {consumed:,} events consumed", file=out)
        print(
            f"final state: live={status['live_comments']:,} "
            f"pages={status['live_pages']:,} "
            f"edges={status['thresholded_edges']:,} "
            f"triangles={status['triangles']:,} "
            f"malformed={status['ingest_malformed']:,}",
            file=out,
        )
        report_top(f"final top {args.top} by {args.rank_by}:")
        print("", file=out)
        print(service.metrics.format(), file=out)
        if args.durable:
            service.close()
            print(f"durable state persisted to {args.durable}", file=out)
    except BaseException as exc:
        sink.write(error=exc)
        raise
    sink.write()
    return 0


class _StatusSink:
    """The one ``--status-json`` write path shared by every serve variant.

    Created before the service, bound to its ``status()`` as soon as one
    exists, and fired exactly once — on the normal exit path *or* on an
    error unwind (then with an ``"error"`` field) — so even a crashed
    serve run leaves a final snapshot behind for operators to read.
    """

    def __init__(self, args: argparse.Namespace, out) -> None:
        self.path = getattr(args, "status_json", None)
        self.out = out
        self.extra: dict = {}
        self._source = None
        self._written = False

    def bind(self, source) -> None:
        """*source* is a ``status()`` callable or an already-built dict."""
        self._source = source

    def _snapshot(self, error: BaseException | None = None) -> dict:
        if callable(self._source):
            try:
                status = dict(self._source())
            except Exception as exc:
                status = {"status_error": f"{type(exc).__name__}: {exc}"}
        elif self._source is not None:
            status = dict(self._source)
        else:
            status = {}
        status.update(self.extra)
        if error is not None:
            status["error"] = f"{type(error).__name__}: {error}"
        return status

    def _emit(self, status: dict) -> None:
        atomic_write_text(
            Path(self.path),
            json.dumps(status, indent=2, default=str),
        )

    def checkpoint(self) -> None:
        """Write a live snapshot *now* without consuming the final write.

        Lets a long-running serve publish runtime facts early — e.g. the
        ephemeral port an ``--http 0`` gateway actually bound — so
        harnesses can discover them while the stream is still flowing.
        The exactly-once final :meth:`write` still happens at shutdown.
        """
        if self._written or not self.path:
            return
        self._emit(self._snapshot())

    def write(self, error: BaseException | None = None) -> None:
        """Write the snapshot once; later calls are no-ops."""
        if self._written or not self.path:
            return
        self._written = True
        self._emit(self._snapshot(error))
        print(f"wrote status snapshot to {self.path}", file=self.out)


def _serve_supervised(args: argparse.Namespace, config, out) -> int:
    """``serve --durable DIR --supervise``: watchdog parent + durable child."""
    from contextlib import nullcontext

    from repro.graph.io import IngestStats
    from repro.serve import ServeSupervisor
    from repro.serve.ingest import iter_ndjson_events

    supervisor = ServeSupervisor(
        config,
        directory=args.durable,
        queue_capacity=args.queue_capacity,
        queue_policy=args.queue_policy,
        forward_batch=args.batch_size,
        heartbeat_timeout=args.heartbeat_timeout,
        max_restarts=args.max_restarts,
        restart_window=args.restart_window,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        fsync=args.fsync,
        fsync_interval=args.fsync_interval,
        snapshot_every=args.snapshot_every,
        keep_snapshots=args.keep_snapshots,
        wal_segment_bytes=args.wal_segment_bytes,
        window_horizon=args.horizon,
        allowed_lateness=args.lateness,
        batch_size=args.batch_size,
    )
    sink = _StatusSink(args, out)
    sink.bind(supervisor.status)
    print(f"supervised child pid {supervisor.child_pid}", file=out)
    print(supervisor.last_recovery, file=out)
    try:
        stats = IngestStats()
        source = (
            nullcontext(sys.stdin)
            if args.input == "-"
            else open(args.input, "r", encoding="utf-8")
        )
        with source as lines:
            consumed = supervisor.run_events(
                iter_ndjson_events(lines, stats), max_events=args.max_events
            )
        status = supervisor.status()
        sink.bind(status)
        why = (
            "interrupt"
            if supervisor.metrics.counter("service.interrupted").value
            else "end of stream"
        )
        print(f"\nshutdown ({why}): {consumed:,} events consumed", file=out)
        print(
            f"supervision: restarts={status['restarts']} "
            f"degraded={status['degraded']} shed={status['shed_events']:,} "
            f"acked={status['acked_events']:,}",
            file=out,
        )
        if not supervisor.degraded:
            rows = supervisor.top_k_triplets(args.top, by=args.rank_by)
            print(f"final top {args.top} by {args.rank_by}:", file=out)
            if not rows:
                print("  (no triplets above the cutoff)", file=out)
            for row in rows:
                x, y, z = row["authors"]
                print(
                    f"  {x} / {y} / {z}  "
                    f"min_w'={row['min_weight']} T={row['t']:.4f} "
                    f"w_xyz={row['w_xyz']} C={row['c']:.4f}",
                    file=out,
                )
        supervisor.close()
        print(f"durable state persisted to {args.durable}", file=out)
    except BaseException as exc:
        sink.write(error=exc)
        raise
    sink.write()
    return 0 if not supervisor.degraded else 1


def _serve_sharded(args: argparse.Namespace, config, out) -> int:
    """``serve --shards N [--http PORT]``: sharded query tier + gateway.

    Every shard runs as a supervised worker process (``--supervise`` is
    implied); with ``--durable DIR`` each journals to its own
    ``DIR/shard-NN`` store.  ``--http`` fronts the tier with the stdlib
    gateway; ``--linger`` keeps it answering after the stream ends.
    SIGTERM is treated like SIGINT (graceful drain + final report), so
    a plain ``kill`` — e.g. from a CI step — still exits 0.
    """
    import signal
    import time
    from contextlib import nullcontext

    from repro.graph.io import IngestStats
    from repro.serve import HttpGateway, ShardedDetectionService
    from repro.serve.ingest import iter_ndjson_events
    from repro.serve.shard import ShardUnavailableError

    if args.linger and args.http is None:
        print("--linger requires --http PORT", file=out)
        return 2
    durable_kwargs = {}
    if args.durable:
        durable_kwargs = dict(
            fsync=args.fsync,
            fsync_interval=args.fsync_interval,
            snapshot_every=args.snapshot_every,
            keep_snapshots=args.keep_snapshots,
            wal_segment_bytes=args.wal_segment_bytes,
        )
    sink = _StatusSink(args, out)
    service = ShardedDetectionService(
        config,
        n_shards=max(1, args.shards),
        ingest_sharding=args.ingest_sharding,
        directory=args.durable,
        heartbeat_timeout=args.heartbeat_timeout,
        max_shard_restarts=args.max_restarts,
        restart_backoff=args.backoff_base,
        forward_batch=args.batch_size,
        queue_capacity=args.queue_capacity,
        window_horizon=args.horizon,
        allowed_lateness=args.lateness,
        batch_size=args.batch_size,
        **durable_kwargs,
    )
    sink.bind(service.status)
    mode = "durable" if args.durable else "volatile"
    ingest_rule = (
        f"crc32(page) % {service.n_shards} (partial-weight exchange)"
        if service.ingest_sharding == "page"
        else "replicated fan-out"
    )
    print(
        f"sharded tier: {service.n_shards} {mode} shard(s), "
        f"queries = crc32(author) % {service.n_shards}, "
        f"ingest = {ingest_rule}",
        file=out,
    )
    def _graceful(_sig, _frame):
        raise KeyboardInterrupt

    try:
        prev_term = signal.signal(signal.SIGTERM, _graceful)
    except ValueError:  # not the main thread (in-process test harness)
        prev_term = None
    gateway = None
    exit_code = 0
    try:
        if args.http is not None:
            gateway = HttpGateway(
                service, host=args.http_host, port=args.http
            ).start()
            host, port = gateway.address
            # Publish the bound address (ephemeral under --http 0) both
            # in the final snapshot and in an immediate checkpoint, so
            # harnesses can discover the port while the stream runs.
            sink.extra["http"] = {
                "host": host,
                "port": port,
                "url": gateway.url,
            }
            sink.checkpoint()
            print(f"http gateway listening on {gateway.url}", file=out)
        stats = IngestStats()
        source = (
            nullcontext(sys.stdin)
            if args.input == "-"
            else open(args.input, "r", encoding="utf-8")
        )
        with source as lines:
            consumed = service.run_events(
                iter_ndjson_events(lines, stats), max_events=args.max_events
            )
        interrupted = service.metrics.counter("service.interrupted").value
        if args.linger and gateway is not None and not interrupted:
            print(
                f"\nstream consumed ({consumed:,} events); answering "
                "queries until interrupt",
                file=out,
            )
            try:
                while True:
                    time.sleep(0.5)
            except KeyboardInterrupt:
                pass
        status = service.status()
        sink.bind(status)
        why = (
            "interrupt"
            if service.metrics.counter("service.interrupted").value
            else "end of stream"
        )
        print(f"\nshutdown ({why}): {consumed:,} events consumed", file=out)
        up = sum(1 for s in status["shards"] if s["up"])
        restarts = int(service.metrics.counter("sharded.restarts").value)
        shed = int(service.metrics.counter("sharded.shed").value)
        print(
            f"shards: {up}/{status['n_shards']} up, "
            f"restarts={restarts}, shed={shed:,}",
            file=out,
        )
        try:
            rows = service.top_k_triplets(args.top, by=args.rank_by)
            print(f"final top {args.top} by {args.rank_by}:", file=out)
            if not rows:
                print("  (no triplets above the cutoff)", file=out)
            for row in rows:
                x, y, z = row["authors"]
                print(
                    f"  {x} / {y} / {z}  "
                    f"min_w'={row['min_weight']} T={row['t']:.4f}",
                    file=out,
                )
        except (ShardUnavailableError, ValueError) as exc:
            print(f"final top-k unavailable: {exc}", file=out)
        if args.durable:
            print(f"durable state persisted to {args.durable}", file=out)
        exit_code = 0 if status["healthy"] else 1
    except BaseException as exc:
        sink.write(error=exc)
        raise
    finally:
        if prev_term is not None:
            signal.signal(signal.SIGTERM, prev_term)
        if gateway is not None:
            gateway.close()
        service.close()
    sink.write()
    return exit_code


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "recommend": _cmd_recommend,
        "detect": _cmd_detect,
        "figures": _cmd_figures,
        "verify": _cmd_verify,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
