"""Online-vs-batch parity: the serve engine's exactness contract, executable.

The :class:`~repro.serve.engine.DetectionEngine` promises that after
*any* interleaving of appends, out-of-order arrivals, and window
advances, every query answer equals a from-scratch
:class:`~repro.pipeline.framework.CoordinationPipeline` run over exactly
the live (admitted, unevicted) comments.  :func:`run_online_parity`
makes that promise executable in the :mod:`repro.verify.parity` idiom:

1. A seeded RNG scrambles a comment corpus into an *arrival order*
   (event time + bounded random delay — genuine out-of-order delivery),
   then chops it into random micro-batches.
2. Each step either ingests a batch or advances the watermark-derived
   eviction cutoff; the harness maintains its own live-corpus list
   under the engine's exact admission rule (late events are dropped by
   both sides, so the oracle input is always well-defined).
3. At checkpoints (and always at the end), every queryable surface —
   CI edge weights, the nonzero ``P'`` ledger, per-triplet
   ``weights/T/w_xyz/p_sum/C``, and the candidate components — is
   diffed **by author name** against a fresh batch run.  Name-keying is
   what makes the diff order-independent: the engine interns ids in
   arrival order, the oracle in corpus order.

Any mismatch becomes a human-readable divergence in the returned
:class:`OnlineParityReport`; float scores are compared bit-exactly
(``==``), because the engine replays the very same IEEE operations the
batch kernels perform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.pipeline.config import PipelineConfig
from repro.pipeline.framework import CoordinationPipeline
from repro.pipeline.results import PipelineResult
from repro.serve.engine import DetectionEngine

__all__ = ["OnlineParityReport", "run_online_parity"]

Comment = tuple  # (author, page, created_utc)

_DIFF_LIMIT = 4  # listed per-item mismatches before eliding


@dataclass
class OnlineParityReport:
    """Outcome of one online-vs-batch differential run."""

    n_comments: int
    n_steps: int
    n_checks: int
    seed: int
    n_ingested: int = 0
    n_advances: int = 0
    n_late_dropped: int = 0
    max_triangles: int = 0
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the engine matched the batch oracle at every check."""
        return not self.divergences

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"online parity run: {self.n_comments:,} comments over "
            f"{self.n_steps} steps (seed {self.seed})",
            f"  ingest batches: {self.n_ingested}, window advances: "
            f"{self.n_advances}, late drops: {self.n_late_dropped}",
            f"  oracle checks: {self.n_checks}, peak triangles: "
            f"{self.max_triangles:,}",
        ]
        if self.ok:
            lines.append(
                "  ONLINE PARITY OK — engine matches batch oracle at every "
                "check"
            )
        else:
            lines.append(
                f"  ONLINE PARITY FAILED — {len(self.divergences)} "
                "divergence(s):"
            )
            lines += [f"    - {d}" for d in self.divergences]
        return "\n".join(lines)


def _oracle_views(result: PipelineResult):
    """Name-keyed views of a batch run (edges, P', triplets, components)."""
    name = result.ci.author_name
    edges = {}
    for (u, v), w in result.ci.edges.to_dict().items():
        a, b = str(name(u)), str(name(v))
        edges[(a, b) if a <= b else (b, a)] = w
    pprime = {
        str(name(i)): int(c)
        for i, c in enumerate(result.ci.page_counts)
        if c
    }
    tris = {}
    tm = result.triplet_metrics
    t = result.triangles
    for i in range(t.n_triangles):
        names = tuple(
            sorted(str(name(int(x))) for x in (t.a[i], t.b[i], t.c[i]))
        )
        weights = tuple(
            sorted(int(w) for w in (t.w_ab[i], t.w_ac[i], t.w_bc[i]))
        )
        row = {
            "weights": weights,
            "t": float(result.t_scores[i]),
        }
        if tm is not None:
            row["w_xyz"] = int(tm.w_xyz[i])
            row["p_sum"] = int(tm.p_sum[i])
            row["c"] = float(tm.c_scores[i])
        tris[names] = row
    comps = {frozenset(c.member_names) for c in result.components}
    return edges, pprime, tris, comps


def _engine_views(engine: DetectionEngine):
    """The same four views read from the live engine."""
    tris = {}
    hyper = engine.config.compute_hypergraph
    for r in engine.top_k_triplets(1 << 62):
        row = {"weights": r["weights"], "t": r["t"]}
        if hyper:
            row["w_xyz"] = r["w_xyz"]
            row["p_sum"] = r["p_sum"]
            row["c"] = r["c"]
        tris[r["authors"]] = row
    comps = {frozenset(c) for c in engine.components()}
    return engine.ci_edges(), engine.page_counts(), tris, comps


def _diff_dicts(kind: str, oracle: dict, engine: dict, out: list[str]) -> None:
    mismatched = [
        k
        for k in oracle.keys() | engine.keys()
        if oracle.get(k) != engine.get(k)
    ]
    if not mismatched:
        return
    shown = sorted(mismatched, key=repr)[:_DIFF_LIMIT]
    details = "; ".join(
        f"{k!r}: oracle={oracle.get(k)!r} engine={engine.get(k)!r}"
        for k in shown
    )
    more = len(mismatched) - len(shown)
    suffix = f" (+{more} more)" if more > 0 else ""
    out.append(f"{kind}: {len(mismatched)} mismatch(es) — {details}{suffix}")


def _check(
    step: str,
    config: PipelineConfig,
    live: Sequence[Comment],
    engine: DetectionEngine,
    out: list[str],
) -> None:
    result = CoordinationPipeline(config).run(
        BipartiteTemporalMultigraph.from_comments(list(live))
    )
    o_edges, o_pp, o_tris, o_comps = _oracle_views(result)
    e_edges, e_pp, e_tris, e_comps = _engine_views(engine)
    pre = len(out)
    _diff_dicts(f"{step}: CI edges", o_edges, e_edges, out)
    _diff_dicts(f"{step}: P' ledger", o_pp, e_pp, out)
    _diff_dicts(f"{step}: triplets", o_tris, e_tris, out)
    if o_comps != e_comps:
        out.append(
            f"{step}: components — oracle-only="
            f"{[sorted(c) for c in list(o_comps - e_comps)[:_DIFF_LIMIT]]} "
            f"engine-only="
            f"{[sorted(c) for c in list(e_comps - o_comps)[:_DIFF_LIMIT]]}"
        )
    expected = len(live) - result.filter_report.removed_comments
    if len(out) == pre and engine.n_live_comments != expected:
        out.append(
            f"{step}: live-comment count — oracle={expected} "
            f"engine={engine.n_live_comments}"
        )


def run_online_parity(
    comments: Sequence[Comment],
    config: PipelineConfig | None = None,
    *,
    n_steps: int = 60,
    seed: int = 0,
    max_delay: int | None = None,
    horizon: int | None = None,
    check_every: int = 10,
    compact_min: int = 64,
) -> OnlineParityReport:
    """Drive a seeded append/advance interleaving and diff against batch runs.

    Parameters
    ----------
    comments:
        The corpus to stream, as ``(author, page, created_utc)`` tuples.
    config:
        Pipeline configuration shared by engine and oracle (defaults to
        :class:`~repro.pipeline.config.PipelineConfig`'s defaults).
    n_steps:
        Number of interleaved steps (~75 % ingest batches, ~25 % window
        advances, RNG-chosen).
    seed:
        RNG seed controlling arrival delays, batch boundaries, and the
        ingest/advance interleaving — reruns reproduce exactly.
    max_delay:
        Maximum random arrival delay in seconds (default: one tenth of
        the corpus time span) — the out-of-order severity knob.
    horizon:
        Sliding-window width driving the advance cutoffs (default: half
        the corpus time span, so evictions genuinely happen).
    check_every:
        Run the (expensive) full-surface oracle diff every this many
        steps; a final check always runs after the last step.
    compact_min:
        Engine compaction floor — kept small so long runs also exercise
        compaction-under-churn.
    """
    config = config if config is not None else PipelineConfig()
    rng = random.Random(seed)
    # Normalize keys to strings so engine and oracle intern identical
    # names (the oracle's BTM falls back to synthetic "user<id>" labels
    # for raw integer authors, which would defeat the name-keyed diff).
    comments = [(str(a), str(p), int(t)) for a, p, t in comments]
    if comments:
        t_lo = min(t for _a, _p, t in comments)
        t_hi = max(t for _a, _p, t in comments)
        span = max(t_hi - t_lo, 1)
    else:
        t_lo = t_hi = 0
        span = 1
    if max_delay is None:
        max_delay = max(span // 10, 1)
    if horizon is None:
        horizon = max(span // 2, 1)

    # Arrival order: event time plus a bounded random delay.
    arrivals = sorted(
        comments, key=lambda c: (c[2] + rng.randrange(0, max_delay + 1), rng.random())
    )
    engine = DetectionEngine(config, compact_min=compact_min)
    report = OnlineParityReport(
        n_comments=len(comments),
        n_steps=n_steps,
        n_checks=0,
        seed=seed,
    )
    live: list[Comment] = []
    cursor = 0
    max_seen = t_lo

    for step in range(n_steps):
        remaining = len(arrivals) - cursor
        steps_left = n_steps - step
        if remaining and (rng.random() < 0.75 or steps_left * 2 >= remaining):
            # Ingest a batch sized to roughly exhaust the stream in time.
            target = max(1, remaining // max(1, steps_left - steps_left // 4))
            size = rng.randrange(1, 2 * target + 1)
            batch = arrivals[cursor : cursor + size]
            cursor += len(batch)
            cut = engine.evict_cutoff
            admitted = [c for c in batch if cut is None or c[2] >= cut]
            report.n_late_dropped += len(batch) - len(admitted)
            engine.ingest(batch)
            live.extend(admitted)
            max_seen = max([max_seen] + [c[2] for c in batch])
            report.n_ingested += 1
        else:
            cutoff = max_seen - horizon + rng.randrange(0, max(horizon // 4, 1))
            engine.advance(cutoff)
            cut = engine.evict_cutoff
            live = [c for c in live if c[2] >= cut]
            report.n_advances += 1
        report.max_triangles = max(report.max_triangles, engine.n_triangles)
        if (step + 1) % check_every == 0:
            _check(
                f"step {step + 1}", config, live, engine, report.divergences
            )
            report.n_checks += 1

    if report.n_checks == 0 or n_steps % check_every != 0:
        _check("final", config, live, engine, report.divergences)
        report.n_checks += 1
    return report
