"""Correctness subsystem: differential parity + runtime invariants.

The repo's correctness story rests on multiple engines that must agree
*exactly* (four projection engines, two triangle engines, serial and
distributed).  This package makes that guarantee executable:

- :mod:`repro.verify.parity` — run one corpus through every engine,
  structurally diff the outputs against the reference oracle, and shrink
  any divergence to a minimal counterexample;
- :mod:`repro.verify.invariants` — the paper's checkable properties
  (score bounds, ``min(w') <= min(P')``, symmetric dedup, window
  monotonicity) as reusable assertions;
- :mod:`repro.verify.chaos` — fault-injected parity: a seeded
  :class:`~repro.ygm.faults.FaultPlan` is unleashed on a distributed run,
  which must fail typed (or complete), then resume from its checkpoint to
  results identical to the serial oracle;
- :mod:`repro.verify.bench_gate` — the CI benchmark-regression gate:
  fresh ``BENCH_*.json`` results compared against committed baselines
  with a tolerance-plus-noise-floor policy, failing on slowdown
  (``python -m repro.verify.bench_gate``);
- :mod:`repro.verify.online` — streaming parity: a seeded interleaving
  of appends, out-of-order arrivals, and window advances is driven
  through the :class:`~repro.serve.engine.DetectionEngine`, whose every
  queryable surface must exactly match a from-scratch batch run over the
  live window at each checkpoint;
- :mod:`repro.verify.sharded` — sharded parity: one corpus is streamed
  through the single-engine oracle and through
  :class:`~repro.serve.shard.ShardedDetectionService` tiers at several
  shard counts, and every merged answer (top-k, user scores,
  components, engine clones) must match the oracle bit-for-bit;
- :mod:`repro.verify.layers` — multi-layer parity: every action layer's
  event stream through the full engine sweep, the page layer against
  the pre-refactor code path byte-for-byte, and the fused score under
  layer/weight permutations (must be ``==``-identical).

All are callable from tests and from the ``repro-botnets verify`` CLI
subcommand (``--chaos`` for the fault-injected mode, ``--online`` for
the streaming mode, ``--sharded`` for the shard-topology mode,
``--layers`` for the multi-layer mode).
"""

from repro.verify.chaos import (
    ChaosReport,
    RecoveryChaosReport,
    diff_results,
    run_chaos,
    run_recovery_chaos,
)
from repro.verify.layers import LayerParityReport, run_layer_parity
from repro.verify.online import OnlineParityReport, run_online_parity
from repro.verify.sharded import ShardedParityReport, run_sharded_parity

from repro.verify.invariants import (
    InvariantViolation,
    check_edge_canonical_form,
    check_edge_weight_bounds,
    check_projection_invariants,
    check_triangle_weight_bound,
    check_unit_interval,
    check_window_monotonicity,
)
from repro.verify.parity import (
    ParityReport,
    default_projection_engines,
    default_triangle_engines,
    run_parity,
    shrink_comments,
)

_BENCH_GATE_EXPORTS = ("GateCheck", "GateReport", "run_gate")


def __getattr__(name: str):
    # Lazy so `python -m repro.verify.bench_gate` does not trigger the
    # runpy found-in-sys.modules double-import warning.
    if name in _BENCH_GATE_EXPORTS:
        from repro.verify import bench_gate

        return getattr(bench_gate, name)
    raise AttributeError(name)


__all__ = [
    "GateCheck",
    "GateReport",
    "run_gate",
    "ChaosReport",
    "diff_results",
    "RecoveryChaosReport",
    "run_chaos",
    "run_recovery_chaos",
    "InvariantViolation",
    "check_edge_canonical_form",
    "check_edge_weight_bounds",
    "check_projection_invariants",
    "check_triangle_weight_bound",
    "check_unit_interval",
    "check_window_monotonicity",
    "LayerParityReport",
    "run_layer_parity",
    "OnlineParityReport",
    "run_online_parity",
    "ShardedParityReport",
    "run_sharded_parity",
    "ParityReport",
    "default_projection_engines",
    "default_triangle_engines",
    "run_parity",
    "shrink_comments",
]
