"""Runtime-checkable invariants of the paper's pipeline.

Every property the paper states (or that the engines' contracts imply) and
that can be checked mechanically on real output, packaged as reusable
assertions.  Each ``check_*`` raises :class:`InvariantViolation` with a
specific message on failure and returns ``None`` on success, so they can
be called from unit tests, from property tests, and from the ``repro-
botnets verify`` CLI subcommand alike.

Checked properties:

- eq. 4/7: ``C`` and ``T`` scores lie in ``[0, 1]``;
- the argument following eq. 7: ``min(w') <= min(P')`` per triangle
  (each page contributing to an edge weight also contributes to both
  endpoints' page ledgers);
- symmetric dedup: the CI edge list is canonical (``src < dst``), free of
  duplicates, and strictly positive;
- monotonicity: widening the window can only grow edge weights and page
  counts (a window that covers another observes a superset of pairs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.projection.window import TimeWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.graph.bipartite import BipartiteTemporalMultigraph
    from repro.projection.ci_graph import CommonInteractionGraph
    from repro.tripoll.survey import TriangleSet

__all__ = [
    "InvariantViolation",
    "check_unit_interval",
    "check_edge_canonical_form",
    "check_edge_weight_bounds",
    "check_triangle_weight_bound",
    "check_window_monotonicity",
    "check_projection_invariants",
]


class InvariantViolation(AssertionError):
    """A checkable property of the paper's pipeline does not hold."""


def check_unit_interval(name: str, values: np.ndarray) -> None:
    """Scores *values* (eq. 4's ``C`` or eq. 7's ``T``) must lie in [0, 1]."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return
    if not np.all(np.isfinite(values)):
        raise InvariantViolation(f"{name} contains non-finite scores")
    lo, hi = float(values.min()), float(values.max())
    if lo < 0.0 or hi > 1.0:
        raise InvariantViolation(
            f"{name} outside [0, 1]: min={lo}, max={hi}"
        )


def check_edge_canonical_form(edges: EdgeList) -> None:
    """The CI edge list must be symmetric-deduplicated.

    Canonical orientation ``src < dst``, no duplicate pairs after
    accumulation, and strictly positive weights (an edge exists iff at
    least one page produced it).
    """
    if edges.n_edges == 0:
        return
    if np.any(edges.src >= edges.dst):
        raise InvariantViolation(
            "edge list not in canonical src < dst orientation"
        )
    acc = edges.accumulate()
    if acc.n_edges != edges.n_edges:
        raise InvariantViolation(
            f"edge list contains {edges.n_edges - acc.n_edges} duplicate "
            "pair(s); symmetric dedup failed"
        )
    if np.any(edges.weight <= 0):
        raise InvariantViolation("edge weights must be strictly positive")


def check_edge_weight_bounds(ci: "CommonInteractionGraph") -> None:
    """``w'_xy <= min(P'_x, P'_y)`` for every edge (eq. 5 vs eq. 6).

    Each page counted by ``w'_xy`` creates a projection edge at both *x*
    and *y*, so it is also counted by both ``P'`` entries.
    """
    edges = ci.edges
    if edges.n_edges == 0:
        return
    cap = np.minimum(
        ci.page_counts[edges.src], ci.page_counts[edges.dst]
    )
    bad = np.flatnonzero(edges.weight > cap)
    if bad.size:
        i = int(bad[0])
        raise InvariantViolation(
            f"edge ({int(edges.src[i])}, {int(edges.dst[i])}) has w'="
            f"{int(edges.weight[i])} > min(P') = {int(cap[i])} "
            f"({bad.size} violating edge(s))"
        )


def check_triangle_weight_bound(
    triangles: "TriangleSet", page_counts: np.ndarray
) -> None:
    """``min(w') <= min(P')`` per triangle — the bound that puts T in [0,1]."""
    if triangles.n_triangles == 0:
        return
    page_counts = np.asarray(page_counts, dtype=np.int64)
    min_p = np.minimum(
        np.minimum(page_counts[triangles.a], page_counts[triangles.b]),
        page_counts[triangles.c],
    )
    bad = np.flatnonzero(triangles.min_weights() > min_p)
    if bad.size:
        i = int(bad[0])
        raise InvariantViolation(
            f"triangle ({int(triangles.a[i])}, {int(triangles.b[i])}, "
            f"{int(triangles.c[i])}) has min w' = "
            f"{int(triangles.min_weights()[i])} > min P' = {int(min_p[i])}"
        )


def check_window_monotonicity(
    btm: "BipartiteTemporalMultigraph",
    inner: TimeWindow,
    outer: TimeWindow,
    engine=None,
) -> None:
    """Widening the window must not lose weight.

    For ``outer.covers(inner)``, every pair observed inside *inner* is
    also observed inside *outer*, so each edge weight and page count under
    *outer* is at least its value under *inner*.
    """
    from repro.projection.project import project

    if not outer.covers(inner):
        raise ValueError(f"{outer} does not cover {inner}")
    engine = engine if engine is not None else project
    narrow = engine(btm, inner)
    wide = engine(btm, outer)
    wide_edges = wide.ci.edges.to_dict()
    for pair, w in narrow.ci.edges.to_dict().items():
        if wide_edges.get(pair, 0) < w:
            raise InvariantViolation(
                f"edge {pair} lost weight when widening {inner} to {outer}: "
                f"{w} -> {wide_edges.get(pair, 0)}"
            )
    if np.any(wide.ci.page_counts < narrow.ci.page_counts):
        user = int(
            np.flatnonzero(wide.ci.page_counts < narrow.ci.page_counts)[0]
        )
        raise InvariantViolation(
            f"P'_{user} shrank when widening {inner} to {outer}"
        )


def check_projection_invariants(
    ci: "CommonInteractionGraph",
    triangles: "TriangleSet" = None,
    t_values: np.ndarray | None = None,
    c_values: np.ndarray | None = None,
) -> list[str]:
    """Run every applicable check; return the names of the checks that ran.

    Raises :class:`InvariantViolation` on the first failure.
    """
    ran = []
    check_edge_canonical_form(ci.edges)
    ran.append("edge_canonical_form")
    check_edge_weight_bounds(ci)
    ran.append("edge_weight_bounds")
    if triangles is not None:
        check_triangle_weight_bound(triangles, ci.page_counts)
        ran.append("triangle_weight_bound")
    if t_values is not None:
        check_unit_interval("T scores", t_values)
        ran.append("t_scores_unit_interval")
    if c_values is not None:
        check_unit_interval("C scores", c_values)
        ran.append("c_scores_unit_interval")
    return ran
