"""Sharded-vs-single parity: the query tier's exactness claim, executable.

:class:`~repro.serve.shard.ShardedDetectionService` promises that every
answer it merges across N user-hash shards — global top-k, per-author
scores, cross-shard components — is **bit-identical** to what one
unsharded :class:`~repro.serve.service.DetectionService` would return
over the same stream, under **both ingest modes** (replicated fan-out
and page-hash partitioning with the partial-weight exchange).
:func:`run_sharded_parity` makes that promise executable in the
:mod:`repro.verify.online` idiom:

1. The corpus is sorted by timestamp.  In-order delivery makes the
   final drained engine state independent of micro-batch boundaries,
   so the oracle and every shard topology converge on the same live
   window no matter how their ticks interleave.
2. One single-engine oracle service consumes the stream; then for each
   requested ``(ingest_mode, shard_count)`` pair a fresh
   :class:`ShardedDetectionService` consumes the identical stream.
3. Every queryable surface is diffed: top-k under each available
   ranking (``==`` on the full row dicts — float scores must match
   bit-for-bit), ``user_score`` for a seeded author sample plus one
   absent name, the full component list, ``component_of`` for the same
   sample, and a raw-state probe: in replicated mode a
   :meth:`~ShardedDetectionService.engine_clone` snapshot structurally
   diffed against the oracle engine's snapshot; in page mode the
   merged ``w'`` ledger (:meth:`~ShardedDetectionService.ci_edges`) and
   ``P'`` ledger (:meth:`~ShardedDetectionService.page_counts`) diffed
   entry-by-entry against the oracle engine's — the exchange's
   additivity claim, checked at the raw-weight level.

Any mismatch becomes a human-readable divergence in the returned
:class:`ShardedParityReport`.  Driven by ``repro-botnets verify
--sharded`` and the ``serve``-marked test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.pipeline.config import PipelineConfig
from repro.serve.service import DetectionService
from repro.serve.shard import ShardedDetectionService
from repro.verify.chaos import diff_results

__all__ = ["ShardedParityReport", "run_sharded_parity"]

Comment = tuple  # (author, page, created_utc)

_DIFF_LIMIT = 4  # listed per-item mismatches before eliding


@dataclass
class ShardedParityReport:
    """Outcome of one sharded-vs-single differential run."""

    n_comments: int
    shard_counts: tuple[int, ...]
    k: int
    seed: int
    ingest_modes: tuple[str, ...] = ("replicated",)
    n_checks: int = 0
    n_authors_sampled: int = 0
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every shard topology matched the single-engine oracle."""
        return not self.divergences

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        counts = ", ".join(str(n) for n in self.shard_counts)
        modes = ", ".join(self.ingest_modes)
        lines = [
            f"sharded parity run: {self.n_comments:,} comments across "
            f"shard counts [{counts}] x ingest modes [{modes}] "
            f"(seed {self.seed})",
            f"  surfaces checked: {self.n_checks} "
            f"(top-{self.k}, {self.n_authors_sampled} sampled authors, "
            "components, raw-state probe)",
        ]
        if self.ok:
            lines.append(
                "  SHARDED PARITY OK — every topology matches the "
                "single-engine oracle bit-for-bit"
            )
        else:
            lines.append(
                f"  SHARDED PARITY FAILED — {len(self.divergences)} "
                "divergence(s):"
            )
            lines += [f"    - {d}" for d in self.divergences]
        return "\n".join(lines)


def _diff_rows(
    kind: str, oracle: list[dict], sharded: list[dict], out: list[str]
) -> None:
    if oracle == sharded:
        return
    if len(oracle) != len(sharded):
        out.append(
            f"{kind}: row count — oracle={len(oracle)} sharded={len(sharded)}"
        )
        return
    bad = [i for i, (a, b) in enumerate(zip(oracle, sharded)) if a != b]
    shown = "; ".join(
        f"row {i}: oracle={oracle[i]!r} sharded={sharded[i]!r}"
        for i in bad[:_DIFF_LIMIT]
    )
    more = len(bad) - min(len(bad), _DIFF_LIMIT)
    suffix = f" (+{more} more)" if more > 0 else ""
    out.append(f"{kind}: {len(bad)} row mismatch(es) — {shown}{suffix}")


def _diff_mapping(kind: str, oracle: dict, sharded: dict, out: list[str]) -> None:
    """Entry-level diff of two ledgers (missing / extra / changed keys)."""
    if oracle == sharded:
        return
    missing = [k for k in oracle if k not in sharded]
    extra = [k for k in sharded if k not in oracle]
    changed = [
        k for k in oracle if k in sharded and oracle[k] != sharded[k]
    ]
    parts = []
    for label, keys in (
        ("missing", missing),
        ("extra", extra),
        ("changed", changed),
    ):
        if keys:
            shown = ", ".join(repr(k) for k in sorted(keys)[:_DIFF_LIMIT])
            more = len(keys) - min(len(keys), _DIFF_LIMIT)
            suffix = f" (+{more} more)" if more > 0 else ""
            parts.append(f"{label}: {shown}{suffix}")
    out.append(f"{kind}: {'; '.join(parts)}")


def run_sharded_parity(
    comments: Sequence[Comment],
    config: PipelineConfig | None = None,
    *,
    shard_counts: Sequence[int] = (1, 2, 4),
    ingest_modes: Sequence[str] = ("replicated", "page"),
    k: int = 25,
    seed: int = 0,
    sample_authors: int = 12,
    window_horizon: int | None = None,
    batch_size: int = 64,
    forward_batch: int = 64,
    heartbeat_timeout: float = 30.0,
    **service_kwargs,
) -> ShardedParityReport:
    """Run one corpus through every shard topology and diff all answers.

    Parameters
    ----------
    comments:
        The corpus to stream, as ``(author, page, created_utc)`` tuples.
        Sorted by timestamp before streaming — in-order delivery is what
        makes final state independent of process topology.
    config:
        Pipeline configuration shared by the oracle and every tier.
    shard_counts:
        The topologies to exercise (``1`` included proves the facade
        itself adds nothing even without real partitioning).
    ingest_modes:
        Ingest partitioning modes to sweep — any subset of
        ``("replicated", "page")``.  Every mode runs at every shard
        count.
    k:
        Top-k depth compared under every available ranking.
    seed / sample_authors:
        Seeded author sample for the per-user surfaces; one absent
        author is always added.
    window_horizon:
        Sliding-window width (default: the full corpus span, so nothing
        is evicted and every surface stays populated).
    batch_size / forward_batch / heartbeat_timeout / **service_kwargs:
        Forwarded to the services so oracle and shards tick alike.
    """
    config = config if config is not None else PipelineConfig()
    rng = random.Random(seed)
    stream = sorted(
        [(str(a), str(p), int(t)) for a, p, t in comments],
        key=lambda c: c[2],
    )
    if window_horizon is None:
        if stream:
            span = max(stream[-1][2] - stream[0][2], 1)
        else:
            span = 1
        window_horizon = span + 1

    report = ShardedParityReport(
        n_comments=len(stream),
        shard_counts=tuple(int(n) for n in shard_counts),
        k=int(k),
        seed=seed,
        ingest_modes=tuple(str(m) for m in ingest_modes),
    )

    oracle = DetectionService(
        config,
        window_horizon=window_horizon,
        batch_size=batch_size,
        **service_kwargs,
    )
    oracle.run_events(stream)

    ranks = ["t", "min_weight"] + (
        ["c"] if config.compute_hypergraph else []
    )
    authors = sorted({a for a, _p, _t in stream})
    sample = (
        rng.sample(authors, min(int(sample_authors), len(authors)))
        if authors
        else []
    )
    sample.append("__absent_author__")
    report.n_authors_sampled = len(sample)

    oracle_top = {by: oracle.top_k_triplets(k, by=by) for by in ranks}
    oracle_scores = {a: oracle.user_score(a) for a in sample}
    oracle_comps = oracle.components()
    oracle_members = {a: oracle.component_of(a) for a in sample}
    oracle_snapshot = oracle.engine.snapshot()
    oracle_ci = oracle.engine.ci_edges()
    oracle_pp = oracle.engine.page_counts()

    for mode in report.ingest_modes:
        for n in report.shard_counts:
            out = report.divergences
            tag = f"mode={mode} n_shards={n}"
            tier = ShardedDetectionService(
                config,
                n_shards=n,
                ingest_sharding=mode,
                window_horizon=window_horizon,
                batch_size=batch_size,
                forward_batch=forward_batch,
                heartbeat_timeout=heartbeat_timeout,
                **service_kwargs,
            )
            try:
                tier.run_events(stream)
                for by in ranks:
                    _diff_rows(
                        f"{tag}: top-{k} by {by}",
                        oracle_top[by],
                        tier.top_k_triplets(k, by=by),
                        out,
                    )
                    report.n_checks += 1
                for author in sample:
                    got = tier.user_score(author)
                    if got != oracle_scores[author]:
                        out.append(
                            f"{tag}: user_score({author!r}) — "
                            f"oracle={oracle_scores[author]!r} sharded={got!r}"
                        )
                    members = tier.component_of(author)
                    if members != oracle_members[author]:
                        out.append(
                            f"{tag}: component_of({author!r}) — "
                            f"oracle={oracle_members[author]!r} "
                            f"sharded={members!r}"
                        )
                    report.n_checks += 2
                comps = tier.components()
                if comps != oracle_comps:
                    out.append(
                        f"{tag}: components — oracle has "
                        f"{len(oracle_comps)}, sharded has {len(comps)} "
                        f"(first oracle={oracle_comps[:1]!r} "
                        f"sharded={comps[:1]!r})"
                    )
                report.n_checks += 1
                if mode == "page":
                    # No shard holds a full engine; probe the exchange's
                    # raw merged ledgers against the oracle's instead.
                    _diff_mapping(
                        f"{tag}: merged w' ledger",
                        oracle_ci,
                        tier.ci_edges(),
                        out,
                    )
                    _diff_mapping(
                        f"{tag}: merged P' ledger",
                        oracle_pp,
                        tier.page_counts(),
                        out,
                    )
                    report.n_checks += 2
                else:
                    clone_diff = diff_results(
                        oracle_snapshot, tier.engine_clone(0).snapshot()
                    )
                    for line in clone_diff[:_DIFF_LIMIT]:
                        out.append(f"{tag}: engine clone — {line}")
                    report.n_checks += 1
            finally:
                tier.close()
    return report
