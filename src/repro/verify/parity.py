"""Differential parity harness across every engine of the pipeline.

The paper's results are reproducible only if the seven projection
engines (``project_reference``, ``project``, ``project_bucketed``,
``project_distributed``, the shared-memory parallel path,
``project_streaming``, and the incremental projector) and all triangle
engines (brute-force vs. surveyed, serial vs. distributed vs. parallel)
agree *exactly*.  All of them are thin orchestration
over the same :mod:`repro.kernels` layer — serial and distributed paths
literally run the same :mod:`repro.exec` plan — so exact agreement is by
construction, and this harness is what makes the claim executable: it
runs one comment corpus through every engine, structurally diffs the
outputs against the reference oracle, and — on divergence — shrinks the
corpus to a minimal counterexample by delta-debugging the comment list.

The harness is engine-agnostic: the default registries can be overridden
with arbitrary callables, which is how the tests prove the harness *can*
catch a deliberately broken engine (and how a future engine gets wired
into the same oracle).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.exec.parallel import ParallelExecutor
from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.graph.edgelist import EdgeList
from repro.projection.buckets import project_bucketed
from repro.projection.distributed import project_distributed
from repro.projection.incremental import IncrementalProjector
from repro.projection.project import (
    ProjectionResult,
    project,
    project_reference,
)
from repro.projection.streaming import project_streaming
from repro.projection.window import TimeWindow
from repro.tripoll.engine import (
    survey_triangles_distributed,
    survey_triangles_plan,
)
from repro.tripoll.survey import TriangleSet, survey_triangles, triangles_brute
from repro.ygm.world import YgmWorld

__all__ = [
    "ParityReport",
    "run_parity",
    "default_projection_engines",
    "default_triangle_engines",
    "shrink_comments",
]

Comment = tuple  # (author, page, created_utc)
ProjectionEngine = Callable[[BipartiteTemporalMultigraph, TimeWindow], ProjectionResult]
TriangleEngine = Callable[[EdgeList, int], TriangleSet]

_DIFF_LIMIT = 4  # listed per-item mismatches before eliding


@dataclass
class ParityReport:
    """Outcome of one differential run.

    ``divergences`` is empty iff every engine agreed with its oracle;
    otherwise ``counterexample`` (when shrinking was requested) holds a
    minimal comment list that still reproduces at least one divergence.
    """

    window: TimeWindow
    min_edge_weight: int
    n_comments: int
    projection_engines: list[str]
    triangle_engines: list[str]
    n_edges: int = 0
    n_triangles: int = 0
    divergences: list[str] = field(default_factory=list)
    counterexample: list[Comment] | None = None

    @property
    def ok(self) -> bool:
        """Whether all engines agreed exactly."""
        return not self.divergences

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"parity run: {self.n_comments:,} comments, window "
            f"{self.window}, cutoff {self.min_edge_weight}",
            f"  projection engines: {', '.join(self.projection_engines)}",
            f"  triangle engines:   {', '.join(self.triangle_engines)}",
            f"  reference output:   {self.n_edges:,} CI edges, "
            f"{self.n_triangles:,} triangles",
        ]
        if self.ok:
            lines.append("  PARITY OK — all engines agree exactly")
        else:
            lines.append(f"  PARITY FAILED — {len(self.divergences)} divergence(s):")
            lines += [f"    - {d}" for d in self.divergences]
            if self.counterexample is not None:
                lines.append(
                    f"  minimal counterexample ({len(self.counterexample)} "
                    "comment(s)):"
                )
                lines += [f"    {c!r}" for c in self.counterexample[:20]]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Engine registries
# ---------------------------------------------------------------------------


def _dense_rows(btm: BipartiteTemporalMultigraph):
    """The corpus as ``(user_id, page_id, time)`` int triples, row order."""
    return zip(btm.users.tolist(), btm.pages.tolist(), btm.times.tolist())


def _into_btm_id_space(
    result: ProjectionResult, btm: BipartiteTemporalMultigraph
) -> ProjectionResult:
    """Translate a projection computed in a private id space back into
    *btm*'s id space.

    The streaming/incremental engines intern their input keys themselves;
    feeding them :func:`_dense_rows` makes each private interner's *key*
    the original btm id, so ``interner.key_of`` is the inverse map.  The
    remap is injective, hence edge multiplicities and ``P'`` entries
    carry over unchanged.
    """
    ci = result.ci
    uid_of = np.asarray(
        [int(ci.user_names.key_of(i)) for i in range(ci.page_counts.shape[0])],
        dtype=np.int64,
    )
    if uid_of.shape[0]:
        edges = EdgeList(
            uid_of[ci.edges.src], uid_of[ci.edges.dst], ci.edges.weight
        )
        page_counts = np.zeros(btm.user_id_space, dtype=np.int64)
        page_counts[uid_of] = ci.page_counts
    else:
        edges = ci.edges
        page_counts = np.zeros(btm.user_id_space, dtype=np.int64)
    remapped = type(ci)(
        edges=edges,
        page_counts=page_counts,
        window=ci.window,
        user_names=btm.user_names,
    )
    return ProjectionResult(
        ci=remapped, stats=result.stats, timings=result.timings
    )


def default_projection_engines(
    bucket_width: int | None = None,
    n_ranks: int = 2,
    parallel_workers: int = 2,
) -> dict[str, ProjectionEngine]:
    """All seven projection engines; the first entry is the oracle."""

    def _bucketed(btm, window):
        bw = bucket_width
        if bw is None:
            bw = max(1, window.width // 3)
        return project_bucketed(btm, window, bucket_width=bw)

    def _distributed(btm, window):
        with YgmWorld(n_ranks) as world:
            return project_distributed(btm, window, world)

    def _parallel(btm, window):
        with ParallelExecutor(parallel_workers) as ex:
            return project(
                btm, window, executor=ex, n_shards=2 * parallel_workers
            )

    def _streaming(btm, window):
        with tempfile.TemporaryDirectory() as spill:
            got = project_streaming(
                _dense_rows(btm), window, spill, n_partitions=4
            )
        return _into_btm_id_space(got, btm)

    def _incremental(btm, window):
        proj = IncrementalProjector(window)
        proj.add_comments(_dense_rows(btm))
        got = ProjectionResult(
            ci=proj.ci_graph(),
            stats={"pair_observations": proj.raw_pair_observations()},
        )
        return _into_btm_id_space(got, btm)

    return {
        "reference": project_reference,
        "vectorized": project,
        "bucketed": _bucketed,
        "distributed": _distributed,
        "parallel": _parallel,
        "streaming": _streaming,
        "incremental": _incremental,
    }


def default_triangle_engines(
    n_ranks: int = 2, parallel_workers: int = 2
) -> dict[str, TriangleEngine]:
    """The triangle engines plus the brute oracle (first entry)."""

    def _brute(edges, min_w):
        acc = edges.accumulate()
        if min_w > 0:
            acc = acc.threshold(min_w)
        return triangles_brute(acc)

    def _surveyed(edges, min_w):
        return survey_triangles(edges, min_edge_weight=min_w)

    def _distributed(edges, min_w):
        with YgmWorld(n_ranks) as world:
            return survey_triangles_distributed(
                edges, world, min_edge_weight=min_w
            )

    def _parallel(edges, min_w):
        with ParallelExecutor(parallel_workers) as ex:
            return survey_triangles_plan(
                edges, ex, 2 * parallel_workers, min_edge_weight=min_w
            )

    return {
        "brute": _brute,
        "surveyed": _surveyed,
        "distributed": _distributed,
        "parallel": _parallel,
    }


# ---------------------------------------------------------------------------
# Structural diffs
# ---------------------------------------------------------------------------


def _elide(items: list) -> str:
    shown = ", ".join(str(i) for i in items[:_DIFF_LIMIT])
    if len(items) > _DIFF_LIMIT:
        shown += f", … ({len(items)} total)"
    return shown


def _diff_projection(
    name: str, ref: ProjectionResult, got: ProjectionResult
) -> list[str]:
    """Structural diff of *got* against the reference projection."""
    msgs: list[str] = []
    ref_edges = ref.ci.edges.to_dict()
    got_edges = got.ci.edges.to_dict()
    if got_edges != ref_edges:
        missing = sorted(set(ref_edges) - set(got_edges))
        extra = sorted(set(got_edges) - set(ref_edges))
        wrong = sorted(
            p
            for p in set(ref_edges) & set(got_edges)
            if ref_edges[p] != got_edges[p]
        )
        if missing:
            msgs.append(f"projection[{name}]: missing edges {_elide(missing)}")
        if extra:
            msgs.append(f"projection[{name}]: extra edges {_elide(extra)}")
        if wrong:
            detail = [
                f"{p}: {got_edges[p]} != {ref_edges[p]}" for p in wrong
            ]
            msgs.append(f"projection[{name}]: wrong weights {_elide(detail)}")
    if not np.array_equal(ref.ci.page_counts, got.ci.page_counts):
        if ref.ci.page_counts.shape != got.ci.page_counts.shape:
            msgs.append(
                f"projection[{name}]: P' ledger shape "
                f"{got.ci.page_counts.shape} != {ref.ci.page_counts.shape}"
            )
        else:
            bad = np.flatnonzero(ref.ci.page_counts != got.ci.page_counts)
            detail = [
                f"P'_{int(u)}: {int(got.ci.page_counts[u])} != "
                f"{int(ref.ci.page_counts[u])}"
                for u in bad[:_DIFF_LIMIT]
            ]
            msgs.append(
                f"projection[{name}]: page counts differ — {_elide(detail)}"
            )
    return msgs


def _diff_triangles(name: str, ref: TriangleSet, got: TriangleSet) -> list[str]:
    """Element-for-element diff of canonically sorted triangle sets."""
    if ref.n_triangles != got.n_triangles:
        return [
            f"triangles[{name}]: {got.n_triangles} triangles != "
            f"{ref.n_triangles} (reference)"
        ]
    for fld in ("a", "b", "c", "w_ab", "w_ac", "w_bc"):
        rv, gv = getattr(ref, fld), getattr(got, fld)
        if not np.array_equal(rv, gv):
            i = int(np.flatnonzero(rv != gv)[0])
            return [
                f"triangles[{name}]: field {fld} differs at canonical "
                f"index {i}: {int(gv[i])} != {int(rv[i])}"
            ]
    return []


def _diff_once(
    comments: Sequence[Comment],
    window: TimeWindow,
    min_edge_weight: int,
    projection_engines: dict[str, ProjectionEngine],
    triangle_engines: dict[str, TriangleEngine],
) -> tuple[list[str], int, int]:
    """One full differential pass; returns (divergences, n_edges, n_triangles)."""
    btm = BipartiteTemporalMultigraph.from_comments(list(comments))
    names = list(projection_engines)
    ref_name = names[0]
    ref = projection_engines[ref_name](btm, window)
    msgs: list[str] = []
    for name in names[1:]:
        msgs += _diff_projection(
            name, ref, projection_engines[name](btm, window)
        )

    tri_names = list(triangle_engines)
    tri_ref = triangle_engines[tri_names[0]](
        ref.ci.edges, min_edge_weight
    ).sorted_canonical()
    for name in tri_names[1:]:
        got = triangle_engines[name](
            ref.ci.edges, min_edge_weight
        ).sorted_canonical()
        msgs += _diff_triangles(name, tri_ref, got)
    return msgs, ref.ci.edges.n_edges, tri_ref.n_triangles


# ---------------------------------------------------------------------------
# Counterexample shrinking
# ---------------------------------------------------------------------------


def shrink_comments(
    comments: Sequence[Comment],
    still_fails: Callable[[list[Comment]], bool],
) -> list[Comment]:
    """Delta-debug *comments* to a minimal list where *still_fails* holds.

    Classic ddmin-style bisection: repeatedly try deleting chunks (halving
    the chunk size on each sweep) and keep any deletion that preserves the
    failure; stops when no single comment can be removed.  The result is
    1-minimal, not globally minimal — enough to read off the hazard.
    """
    current = list(comments)
    if not still_fails(current):
        raise ValueError("initial comment list does not fail the predicate")
    chunk = max(1, len(current) // 2)
    while True:
        reduced = False
        i = 0
        while i < len(current):
            candidate = current[:i] + current[i + chunk :]
            if candidate and still_fails(candidate):
                current = candidate
                reduced = True
            else:
                i += chunk
        if chunk == 1:
            if not reduced:
                return current
        else:
            chunk = max(1, chunk // 2)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_parity(
    comments: Sequence[Comment],
    window: TimeWindow,
    min_edge_weight: int = 0,
    *,
    bucket_width: int | None = None,
    n_ranks: int = 2,
    parallel_workers: int = 2,
    projection_engines: dict[str, ProjectionEngine] | None = None,
    triangle_engines: dict[str, TriangleEngine] | None = None,
    shrink: bool = True,
) -> ParityReport:
    """Run every engine on one corpus and diff the outputs exactly.

    Parameters
    ----------
    comments:
        ``(author, page, created_utc)`` triples (strings or dense ids).
    window:
        The projection window ``(δ1, δ2)``.
    min_edge_weight:
        Triangle-survey cutoff applied by both triangle engines.
    bucket_width:
        Bucket width for the bucketed engine (default: a third of the
        window so the merge is exercised over ≥ 3 buckets).
    n_ranks:
        Logical world size for the distributed engines (serial backend).
    parallel_workers:
        Worker-pool size for the shared-memory parallel engines.
    projection_engines / triangle_engines:
        Override the registries; the **first** entry of each dict is
        treated as the oracle the rest are diffed against.
    shrink:
        On divergence, delta-debug the comment list down to a minimal
        counterexample (re-runs all engines per candidate — affordable
        because counterexample corpora are small by construction).

    Examples
    --------
    >>> report = run_parity(
    ...     [("a", "p", 0), ("b", "p", 30), ("c", "p", 45)],
    ...     TimeWindow(0, 60),
    ... )
    >>> report.ok
    True
    """
    proj = projection_engines or default_projection_engines(
        bucket_width=bucket_width,
        n_ranks=n_ranks,
        parallel_workers=parallel_workers,
    )
    tri = triangle_engines or default_triangle_engines(
        n_ranks=n_ranks, parallel_workers=parallel_workers
    )
    comments = list(comments)
    divergences, n_edges, n_triangles = _diff_once(
        comments, window, min_edge_weight, proj, tri
    )
    counterexample = None
    if divergences and shrink and comments:
        counterexample = shrink_comments(
            comments,
            lambda cand: bool(
                _diff_once(cand, window, min_edge_weight, proj, tri)[0]
            ),
        )
    return ParityReport(
        window=window,
        min_edge_weight=min_edge_weight,
        n_comments=len(comments),
        projection_engines=list(proj),
        triangle_engines=list(tri),
        n_edges=n_edges,
        n_triangles=n_triangles,
        divergences=divergences,
        counterexample=counterexample,
    )
