"""Benchmark-regression gate: fresh bench results vs committed baselines.

The bench suite emits machine-readable ``BENCH_*.json`` files
(``benchmarks/results/``); this module compares a fresh run against the
committed baselines (``benchmarks/baselines/``) and fails on slowdown,
so a perf win landed in one PR cannot silently rot in the next.

Comparison policy (per check, slowdown-only — a faster fresh run always
passes):

- **Seconds** are compared with a relative tolerance *and* an absolute
  noise floor: a fresh timing fails only when it exceeds
  ``baseline * (1 + tolerance) + noise_floor``.  The floor keeps
  millisecond-scale tiny-run jitter from flaking the gate while a real
  regression (a de-vectorized kernel, a serialized pool) still trips it.
- **Speedup ratios** (kernel vs reference twin, parallel vs serial) are
  dimensionless and transfer across machines better than seconds; they
  are compared only when the baseline's slow side is above the noise
  floor (otherwise the ratio itself is noise) and, for multi-worker
  scaling entries, only when the fresh host has at least that many cores
  and the baseline actually scaled (speedup ≥ 1).  The 1-worker ratio is
  *always* gated — it measures dispatch overhead, which is meaningful on
  any host — while a multi-worker baseline that never scaled is a
  **stale baseline**: silently skipped by default, a hard error under
  ``--strict`` (recapture it on a multi-core host, see
  ``docs/benchmarking.md``).

Baselines are *required* or *optional*.  A required baseline whose fresh
counterpart is missing fails the gate (the bench did not run); an
optional one — e.g. the full-scale ``BENCH_parallel.json``, which takes
minutes and is not part of the CI smoke — is skipped when no fresh run
exists and compared when one does.  A fresh file that does not parse
fails with a pointer at the atomic-write contract
(``benchmarks/_figures.py``), since a truncated ``BENCH_*.json`` means a
writer bypassed it.

Run as ``python -m repro.verify.bench_gate``; ``--update`` refreshes the
baselines from the fresh results instead of comparing (the documented
way to accept an intentional perf change — see ``docs/benchmarking.md``).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "GateCheck",
    "GateReport",
    "TruncatedResultError",
    "run_gate",
    "main",
]

DEFAULT_TOLERANCE = 0.30
DEFAULT_NOISE_FLOOR = 0.01  # seconds


class TruncatedResultError(RuntimeError):
    """A ``BENCH_*.json`` failed to parse (e.g. truncated by a kill)."""

    def __init__(self, path: Path, cause: Exception) -> None:
        super().__init__(
            f"{path} is not valid JSON ({cause}). Bench result files are "
            "written atomically (tmp + rename, see "
            "benchmarks/_figures.py:atomic_write_text); a truncated file "
            "means a writer bypassed that helper or the file was edited. "
            "Re-run the bench to regenerate it."
        )
        self.path = path


@dataclass
class GateCheck:
    """One baseline-vs-fresh comparison."""

    name: str
    kind: str  # "seconds" | "speedup"
    baseline: float
    fresh: float
    ok: bool
    note: str = ""

    def describe(self) -> str:
        """One aligned report line: verdict, name, baseline vs fresh."""
        mark = "ok  " if self.ok else "FAIL"
        unit = "s" if self.kind == "seconds" else "x"
        line = (
            f"{mark} {self.name:42s} baseline {self.baseline:10.4f}{unit}  "
            f"fresh {self.fresh:10.4f}{unit}"
        )
        return line + (f"  ({self.note})" if self.note else "")


@dataclass
class GateReport:
    """Outcome of one gate run."""

    tolerance: float
    noise_floor: float
    strict: bool = False
    checks: list[GateCheck] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[GateCheck]:
        return [c for c in self.checks if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.errors

    def describe(self) -> str:
        """Human-readable gate report: checks, skips, errors, verdict."""
        lines = [
            f"bench gate: tolerance ±{self.tolerance:.0%}, noise floor "
            f"{self.noise_floor}s{', strict' if self.strict else ''} — "
            f"{len(self.checks)} check(s), {len(self.skipped)} skipped"
        ]
        lines += [f"  {c.describe()}" for c in self.checks]
        lines += [f"  skip {s}" for s in self.skipped]
        lines += [f"  ERROR {e}" for e in self.errors]
        lines.append(
            "  GATE OK — no benchmark regressions"
            if self.ok
            else f"  GATE FAILED — {len(self.failures)} regression(s), "
            f"{len(self.errors)} error(s)"
        )
        return "\n".join(lines)


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise TruncatedResultError(path, exc) from exc


class _Comparator:
    """Shared helpers binding one report's policy knobs."""

    def __init__(self, report: GateReport) -> None:
        self.report = report

    def seconds(self, name: str, baseline: float, fresh: float) -> None:
        limit = baseline * (1.0 + self.report.tolerance) + self.report.noise_floor
        self.report.checks.append(
            GateCheck(name, "seconds", baseline, fresh, fresh <= limit)
        )

    def speedup(
        self, name: str, baseline: float, fresh: float, slow_side: float
    ) -> None:
        if slow_side < self.report.noise_floor:
            self.report.skipped.append(
                f"{name}: baseline timing below noise floor"
            )
            return
        floor = baseline * (1.0 - self.report.tolerance)
        self.report.checks.append(
            GateCheck(name, "speedup", baseline, fresh, fresh >= floor)
        )


def _compare_kernels(base: dict, fresh: dict, rep: GateReport) -> None:
    cmp = _Comparator(rep)
    if base.get("scale") != fresh.get("scale"):
        rep.errors.append(
            f"BENCH_kernels: scale mismatch (baseline {base.get('scale')!r} "
            f"vs fresh {fresh.get('scale')!r}) — rerun at baseline scale"
        )
        return
    for name, b in base.get("kernels", {}).items():
        f = fresh.get("kernels", {}).get(name)
        if f is None:
            rep.errors.append(f"kernels[{name}]: missing from fresh results")
            continue
        cmp.seconds(
            f"kernels[{name}].kernel_seconds",
            float(b["kernel_seconds"]),
            float(f["kernel_seconds"]),
        )
        cmp.speedup(
            f"kernels[{name}].speedup",
            float(b["speedup"]),
            float(f["speedup"]),
            slow_side=float(b["reference_seconds"]),
        )


def _compare_parallel(base: dict, fresh: dict, rep: GateReport) -> None:
    cmp = _Comparator(rep)
    if base.get("scale") != fresh.get("scale"):
        rep.errors.append(
            f"BENCH_parallel: scale mismatch (baseline {base.get('scale')!r} "
            f"vs fresh {fresh.get('scale')!r}) — rerun at baseline scale"
        )
        return
    fresh_cpus = int(fresh.get("cpu_count", 1))
    for plan, b in base.get("plans", {}).items():
        f = fresh.get("plans", {}).get(plan)
        if f is None:
            rep.errors.append(f"plans[{plan}]: missing from fresh results")
            continue
        cmp.seconds(
            f"plans[{plan}].serial_seconds",
            float(b["serial_seconds"]),
            float(f["serial_seconds"]),
        )
        for w, bw in b.get("workers", {}).items():
            if int(w) > fresh_cpus:
                # A core-starved fresh host cannot express the baseline's
                # parallelism; skipping (even when the fresh bench dropped
                # the entry entirely) is correct, erroring is not.
                rep.skipped.append(
                    f"plans[{plan}].workers[{w}]: fresh host has only "
                    f"{fresh_cpus} core(s)"
                )
                continue
            fw = f.get("workers", {}).get(w)
            if fw is None:
                rep.errors.append(
                    f"plans[{plan}].workers[{w}]: missing from fresh results"
                )
                continue
            if int(w) >= 2 and float(bw["speedup"]) < 1.0:
                # A multi-worker baseline below 1x never scaled — it
                # guards nothing.  Under --strict that is a stale
                # baseline to recapture, not a skip.
                msg = (
                    f"plans[{plan}].workers[{w}]: baseline never scaled "
                    f"(speedup {bw['speedup']}x)"
                )
                if rep.strict:
                    rep.errors.append(
                        msg + " — stale baseline; recapture on a "
                        "multi-core host (--update)"
                    )
                else:
                    rep.skipped.append(msg + " — nothing to regress")
                continue
            # w=1 ratios measure dispatch overhead and are gated like any
            # other speedup: a fresh drop below baseline*(1-tol) means the
            # executor's fixed costs regressed.
            cmp.speedup(
                f"plans[{plan}].workers[{w}].speedup",
                float(bw["speedup"]),
                float(fw["speedup"]),
                slow_side=float(b["serial_seconds"]),
            )


def _compare_serve_durable(base: dict, fresh: dict, rep: GateReport) -> None:
    cmp = _Comparator(rep)
    if base.get("scale") != fresh.get("scale"):
        rep.errors.append(
            f"BENCH_serve_durable: scale mismatch (baseline "
            f"{base.get('scale')!r} vs fresh {fresh.get('scale')!r}) — "
            "rerun at baseline scale"
        )
        return
    cmp.seconds(
        "serve_durable.memory.seconds",
        float(base["memory"]["seconds"]),
        float(fresh["memory"]["seconds"]),
    )
    for policy, b in base.get("durable", {}).items():
        f = fresh.get("durable", {}).get(policy)
        if f is None:
            rep.errors.append(
                f"serve_durable.durable[{policy}]: missing from fresh results"
            )
            continue
        cmp.seconds(
            f"serve_durable.durable[{policy}].seconds",
            float(b["seconds"]),
            float(f["seconds"]),
        )
    # The headline durability claim is absolute, not baseline-relative:
    # fsync=interval must keep >= 70% of in-memory throughput (the same
    # floor the bench itself asserts — the gate re-checks the *committed*
    # numbers so a stale result file cannot hide a regression).
    interval = fresh.get("durable", {}).get("interval")
    if interval is not None and float(interval["ratio"]) < 0.70:
        rep.errors.append(
            "serve_durable.durable[interval].ratio: "
            f"{float(interval['ratio']):.2%} of in-memory throughput — "
            "the durability tax exceeds the committed 30% budget"
        )


def _compare_serve_http(base: dict, fresh: dict, rep: GateReport) -> None:
    cmp = _Comparator(rep)
    if base.get("scale") != fresh.get("scale"):
        rep.errors.append(
            f"BENCH_serve_http: scale mismatch (baseline "
            f"{base.get('scale')!r} vs fresh {fresh.get('scale')!r}) — "
            "rerun at baseline scale"
        )
        return
    cmp.seconds(
        "serve_http.ingest.seconds",
        float(base["ingest"]["seconds"]),
        float(fresh["ingest"]["seconds"]),
    )
    for quantile in ("p50_s", "p99_s"):
        cmp.seconds(
            f"serve_http.query.{quantile}",
            float(base["query"][quantile]),
            float(fresh["query"][quantile]),
        )
    # The headline serving claim is absolute, not baseline-relative:
    # query p99 under sustained ingest must stay inside the committed
    # SLO (the same bound the bench itself asserts — the gate re-checks
    # the committed numbers so a stale result file cannot hide a
    # regression).
    slo = float(fresh.get("slo", {}).get("p99_s", 0.0))
    if slo > 0.0 and float(fresh["query"]["p99_s"]) > slo:
        rep.errors.append(
            "serve_http.query.p99_s: "
            f"{float(fresh['query']['p99_s']):.4f}s exceeds the committed "
            f"{slo:g}s SLO"
        )


def _compare_layers(base: dict, fresh: dict, rep: GateReport) -> None:
    cmp = _Comparator(rep)
    if base.get("scale") != fresh.get("scale"):
        rep.errors.append(
            f"BENCH_layers: scale mismatch (baseline {base.get('scale')!r} "
            f"vs fresh {fresh.get('scale')!r}) — rerun at baseline scale"
        )
        return
    cmp.seconds(
        "layers.extract.seconds",
        float(base["extract"]["seconds"]),
        float(fresh["extract"]["seconds"]),
    )
    for layer, b in base.get("layers", {}).items():
        f = fresh.get("layers", {}).get(layer)
        if f is None:
            rep.errors.append(
                f"layers[{layer}]: missing from fresh results"
            )
            continue
        cmp.seconds(
            f"layers[{layer}].seconds",
            float(b["seconds"]),
            float(f["seconds"]),
        )
    cmp.seconds(
        "layers.fuse.seconds",
        float(base["fuse"]["seconds"]),
        float(fresh["fuse"]["seconds"]),
    )
    # The headline multi-layer claim is absolute, not baseline-relative:
    # every planted net must stay recovered by the fused score at the
    # committed precision/recall floor (the same bound the bench itself
    # asserts — the gate re-checks the committed numbers so a stale
    # result file cannot hide a detection regression).
    floor = float(fresh.get("recovery_floor", 0.0))
    for net in base.get("recovery", {}):
        score = fresh.get("recovery", {}).get(net)
        if score is None:
            rep.errors.append(
                f"layers.recovery[{net}]: planted net missing from fresh "
                "results"
            )
            continue
        for metric in ("precision", "recall"):
            if float(score[metric]) < floor:
                rep.errors.append(
                    f"layers.recovery[{net}].{metric}: "
                    f"{float(score[metric]):.2f} below the committed "
                    f"{floor:g} floor"
                )


def _compare_ingest_shard(base: dict, fresh: dict, rep: GateReport) -> None:
    cmp = _Comparator(rep)
    if base.get("scale") != fresh.get("scale"):
        rep.errors.append(
            f"BENCH_ingest_shard: scale mismatch (baseline "
            f"{base.get('scale')!r} vs fresh {fresh.get('scale')!r}) — "
            "rerun at baseline scale"
        )
        return
    cmp.seconds(
        "ingest_shard.single.seconds",
        float(base["single"]["seconds"]),
        float(fresh["single"]["seconds"]),
    )
    for mode, b_counts in base.get("modes", {}).items():
        f_counts = fresh.get("modes", {}).get(mode, {})
        for n, b in b_counts.items():
            f = f_counts.get(n)
            if f is None:
                rep.errors.append(
                    f"ingest_shard.modes[{mode}][{n}]: missing from fresh "
                    "results"
                )
                continue
            cmp.seconds(
                f"ingest_shard.modes[{mode}][{n}].seconds",
                float(b["seconds"]),
                float(f["seconds"]),
            )
    # The headline partitioning claims are absolute, not
    # baseline-relative (the same invariants the bench itself asserts —
    # the gate re-checks the *committed* numbers so a stale result file
    # cannot hide a broken exchange):
    #   - both modes must report exact parity with the oracle;
    #   - page mode must partition the stream (totals sum to the stream,
    #     hottest shard within the balance slack), while replicated mode
    #     must fan out N copies.
    n_events = int(fresh.get("n_events", 0))
    slack = float(fresh.get("page_balance_slack", 0.0))
    for mode, f_counts in fresh.get("modes", {}).items():
        for n, f in f_counts.items():
            tag = f"ingest_shard.modes[{mode}][{n}]"
            if not f.get("parity_ok", False):
                rep.errors.append(
                    f"{tag}.parity_ok: sharded answers diverged from the "
                    "single-engine oracle"
                )
            total = int(f.get("total_shard_events", -1))
            expected = n_events if mode == "page" else int(n) * n_events
            if total != expected:
                rep.errors.append(
                    f"{tag}.total_shard_events: {total} != {expected} — "
                    "ingest no longer "
                    + ("partitions" if mode == "page" else "replicates")
                )
            if mode == "page" and int(n) > 1 and slack > 0.0:
                bound = n_events * slack / int(n)
                hottest = int(f.get("max_shard_events", 0))
                if hottest > bound:
                    rep.errors.append(
                        f"{tag}.max_shard_events: hottest shard ingested "
                        f"{hottest} events, above the committed "
                        f"{slack:g}/N balance bound ({bound:.0f})"
                    )


# name -> (comparator, required).  Required baselines must have a fresh
# counterpart (CI runs those benches every time); optional ones — the
# full-scale parallel bench takes minutes on a big host — are compared
# only when a fresh run exists.
_COMPARATORS = {
    "BENCH_kernels.json": (_compare_kernels, True),
    "BENCH_parallel_smoke.json": (_compare_parallel, True),
    "BENCH_parallel.json": (_compare_parallel, False),
    "BENCH_serve_durable_smoke.json": (_compare_serve_durable, True),
    "BENCH_serve_durable.json": (_compare_serve_durable, False),
    "BENCH_serve_http_smoke.json": (_compare_serve_http, True),
    "BENCH_serve_http.json": (_compare_serve_http, False),
    "BENCH_layers_smoke.json": (_compare_layers, True),
    "BENCH_layers.json": (_compare_layers, False),
    "BENCH_ingest_shard_smoke.json": (_compare_ingest_shard, True),
    "BENCH_ingest_shard.json": (_compare_ingest_shard, False),
}


def run_gate(
    baseline_dir: str | Path,
    results_dir: str | Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    strict: bool = False,
) -> GateReport:
    """Compare every committed baseline against its fresh counterpart.

    Examples
    --------
    >>> import tempfile, json, pathlib
    >>> d = pathlib.Path(tempfile.mkdtemp())
    >>> (d / "base").mkdir(); (d / "res").mkdir()
    >>> payload = {"scale": "tiny", "kernels": {"k": {
    ...     "kernel_seconds": 1.0, "reference_seconds": 5.0, "speedup": 5.0}}}
    >>> _ = (d / "base" / "BENCH_kernels.json").write_text(json.dumps(payload))
    >>> _ = (d / "res" / "BENCH_kernels.json").write_text(json.dumps(payload))
    >>> run_gate(d / "base", d / "res").ok
    True
    """
    baseline_dir = Path(baseline_dir)
    results_dir = Path(results_dir)
    rep = GateReport(tolerance=tolerance, noise_floor=noise_floor, strict=strict)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        rep.errors.append(f"no BENCH_*.json baselines under {baseline_dir}")
        return rep
    for base_path in baselines:
        entry = _COMPARATORS.get(base_path.name)
        if entry is None:
            rep.skipped.append(f"{base_path.name}: no comparator registered")
            continue
        compare, required = entry
        fresh_path = results_dir / base_path.name
        if not fresh_path.exists():
            if required:
                rep.errors.append(
                    f"{base_path.name}: fresh result missing under "
                    f"{results_dir} (bench did not run?)"
                )
            else:
                rep.skipped.append(
                    f"{base_path.name}: optional baseline, no fresh run"
                )
            continue
        try:
            compare(_load(base_path), _load(fresh_path), rep)
        except TruncatedResultError as exc:
            rep.errors.append(str(exc))
    return rep


def update_baselines(
    baseline_dir: str | Path, results_dir: str | Path
) -> list[str]:
    """Copy fresh results over the committed baselines; returns the names."""
    baseline_dir = Path(baseline_dir)
    results_dir = Path(results_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    updated = []
    for name in sorted(_COMPARATORS):
        fresh_path = results_dir / name
        if not fresh_path.exists():
            continue
        _load(fresh_path)  # refuse to bless a truncated file
        shutil.copyfile(fresh_path, baseline_dir / name)
        updated.append(name)
    return updated


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; exit 0 iff the gate passes."""
    repo_root = Path(__file__).resolve().parents[3]
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.bench_gate",
        description="Compare fresh BENCH_*.json results against committed "
        "baselines; fail on slowdown.",
    )
    parser.add_argument(
        "--baseline-dir", default=str(repo_root / "benchmarks" / "baselines")
    )
    parser.add_argument(
        "--results-dir", default=str(repo_root / "benchmarks" / "results")
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument(
        "--noise-floor", type=float, default=DEFAULT_NOISE_FLOOR
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="refresh the baselines from the fresh results instead of "
        "comparing",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat a multi-worker baseline that never scaled "
        "(speedup < 1) as a hard stale-baseline error instead of a skip",
    )
    args = parser.parse_args(argv)
    if args.update:
        updated = update_baselines(args.baseline_dir, args.results_dir)
        print(f"updated {len(updated)} baseline(s): {', '.join(updated)}")
        return 0
    report = run_gate(
        args.baseline_dir,
        args.results_dir,
        tolerance=args.tolerance,
        noise_floor=args.noise_floor,
        strict=args.strict,
    )
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
