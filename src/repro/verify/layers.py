"""Multi-layer parity: every action layer against the serial oracle.

The multi-layer refactor must not be able to change any number the repo
already produces.  This harness makes that claim executable, in three
parts:

1. **Per-layer engine parity** — each action layer's extracted
   ``(author, action_value, time)`` triples are run through the full
   :func:`repro.verify.parity.run_parity` sweep (all projection and
   triangle engines vs. the reference oracle).  A layer is just a
   different event stream; every engine must agree on it bit-for-bit.
2. **Legacy byte-identity** — the ``page`` layer is also run through
   the *pre-refactor* code path (``link_id`` triples straight into
   :meth:`BipartiteTemporalMultigraph.from_comments` and the unchanged
   :class:`~repro.pipeline.framework.CoordinationPipeline`) and the two
   :class:`~repro.pipeline.results.PipelineResult`\\ s are structurally
   diffed with :func:`repro.verify.chaos.diff_results`.  This is the
   "page layer alone reproduces today's results exactly" guarantee.
3. **Fusion determinism** — the fused multi-layer score is recomputed
   under permuted layer orders, reversed dict insertion orders, and
   reordered weight mappings; every permutation must produce an
   ``==``-identical :class:`~repro.actions.fuse.FusedGraph` (same edge
   list, same provenance, same ranking).

Driven by ``repro-botnets verify --layers`` and the ``layers``-marked
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.actions.base import ActionKey, available_layers, resolve_layers
from repro.actions.fuse import fuse_layers
from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.pipeline.config import PipelineConfig
from repro.pipeline.framework import CoordinationPipeline
from repro.pipeline.layers import MultiLayerPipeline
from repro.projection.window import TimeWindow
from repro.verify.chaos import diff_results
from repro.verify.parity import ParityReport, run_parity

__all__ = ["LayerParityReport", "run_layer_parity"]


@dataclass
class LayerParityReport:
    """Outcome of one multi-layer parity run (``ok`` iff all three hold)."""

    window: TimeWindow
    min_edge_weight: int
    n_records: int
    layers: list[str]
    per_layer: dict[str, ParityReport] = field(default_factory=dict)
    layer_events: dict[str, int] = field(default_factory=dict)
    legacy_divergences: list[str] = field(default_factory=list)
    fusion_divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every layer, the legacy path, and fusion all agree."""
        return (
            all(r.ok for r in self.per_layer.values())
            and not self.legacy_divergences
            and not self.fusion_divergences
        )

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"layer parity run: {self.n_records:,} records, window "
            f"{self.window}, cutoff {self.min_edge_weight}",
            f"  layers: {', '.join(self.layers)}",
        ]
        for name in self.layers:
            report = self.per_layer[name]
            verdict = "ok" if report.ok else (
                f"FAILED ({len(report.divergences)} divergence(s))"
            )
            lines.append(
                f"  [{name}] {self.layer_events.get(name, 0):,} events → "
                f"{report.n_edges:,} CI edges, {report.n_triangles:,} "
                f"triangles — engine parity {verdict}"
            )
            if not report.ok:
                lines += [f"      - {d}" for d in report.divergences]
        if self.legacy_divergences:
            lines.append("  LEGACY PATH DIVERGED (page layer != pre-refactor):")
            lines += [f"    - {d}" for d in self.legacy_divergences]
        else:
            lines.append(
                "  legacy byte-identity ok — page layer == pre-refactor path"
            )
        if self.fusion_divergences:
            lines.append("  FUSION NOT DETERMINISTIC:")
            lines += [f"    - {d}" for d in self.fusion_divergences]
        else:
            lines.append(
                "  fusion determinism ok — identical under layer/weight "
                "permutations"
            )
        lines.append(
            "  LAYER PARITY OK" if self.ok else "  LAYER PARITY FAILED"
        )
        return "\n".join(lines)


def _as_dicts(records: Iterable) -> list[Mapping]:
    return [
        rec.to_pushshift_dict() if hasattr(rec, "to_pushshift_dict") else rec
        for rec in records
    ]


def _check_legacy_identity(
    rows: Sequence[Mapping], config: PipelineConfig
) -> list[str]:
    """Diff the page layer against the pre-refactor single-layer path."""
    legacy_triples = [
        (rec["author"], rec["link_id"], int(rec["created_utc"]))
        for rec in rows
        if "link_id" in rec
    ]
    legacy_btm = BipartiteTemporalMultigraph.from_comments(legacy_triples)
    legacy = CoordinationPipeline(config).run(legacy_btm)
    layered = MultiLayerPipeline(config, layers=["page"]).run_records(rows)
    msgs = diff_results(legacy, layered.layers["page"])
    if legacy.layer is not None:
        msgs.append(
            f"legacy result unexpectedly tagged with layer {legacy.layer!r}"
        )
    if layered.layers["page"].layer != "page":
        msgs.append("layered page result not tagged layer='page'")
    return msgs


def _check_fusion_determinism(
    rows: Sequence[Mapping],
    keys: "Sequence[ActionKey]",
    config: PipelineConfig,
) -> list[str]:
    """Fuse under permuted orders; any inequality is a divergence."""
    names = [key.name for key in keys]
    baseline = MultiLayerPipeline(config, layers=list(names)).run_records(rows)
    msgs: list[str] = []

    permuted = MultiLayerPipeline(
        config, layers=list(reversed(names))
    ).run_records(rows)
    if permuted.fused != baseline.fused:
        msgs.append("fused graph differs under reversed layer-list order")
    if permuted.fused_components != baseline.fused_components:
        msgs.append("fused components differ under reversed layer-list order")

    cis = {name: baseline.layers[name].ci_thresholded for name in names}
    weights = dict(config.layer_weights) or None
    forward = fuse_layers(cis, weights=weights)
    backward = fuse_layers(
        {name: cis[name] for name in reversed(names)},
        weights=(
            {k: weights[k] for k in reversed(sorted(weights))}
            if weights
            else None
        ),
    )
    if forward != backward:
        msgs.append("fused graph differs under reversed dict insertion order")
    if forward != baseline.fused:
        msgs.append("re-fusing the per-layer CI graphs changed the result")
    if forward.ranking() != baseline.fused.ranking():
        msgs.append("fused ranking differs between equal fused graphs")
    return msgs


def run_layer_parity(
    records: Iterable,
    window: TimeWindow,
    min_edge_weight: int = 5,
    *,
    layers: "Sequence[str | ActionKey] | None" = None,
    bucket_width: int | None = None,
    n_ranks: int = 2,
    parallel_workers: int = 2,
    shrink: bool = True,
) -> LayerParityReport:
    """Sweep every action layer through the full engine-parity harness.

    Parameters
    ----------
    records:
        The corpus as Pushshift-style dicts or
        :class:`~repro.datagen.records.CommentRecord` rows.
    window / min_edge_weight:
        Projection window and triangle cutoff, applied to every layer.
    layers:
        Layers to sweep (default: every registered layer).
    bucket_width / n_ranks / parallel_workers / shrink:
        Forwarded to :func:`repro.verify.parity.run_parity` per layer.

    Examples
    --------
    >>> rows = [
    ...     {"author": a, "link_id": "p", "created_utc": t,
    ...      "link": "https://x.example/1"}
    ...     for a, t in [("a", 0), ("b", 30), ("c", 45)]
    ... ]
    >>> report = run_layer_parity(
    ...     rows, TimeWindow(0, 60), 0, layers=["page", "link"])
    >>> report.ok
    True
    """
    keys = resolve_layers(
        list(layers) if layers is not None else available_layers()
    )
    rows = _as_dicts(records)
    config = PipelineConfig(
        window=window, min_triangle_weight=min_edge_weight
    )
    report = LayerParityReport(
        window=window,
        min_edge_weight=min_edge_weight,
        n_records=len(rows),
        layers=[key.name for key in keys],
    )
    for key in keys:
        triples: list[tuple] = []
        for rec in rows:
            triples.extend(key.triples(rec))
        report.layer_events[key.name] = len(triples)
        report.per_layer[key.name] = run_parity(
            triples,
            window,
            min_edge_weight=min_edge_weight,
            bucket_width=bucket_width,
            n_ranks=n_ranks,
            parallel_workers=parallel_workers,
            shrink=shrink,
        )
    if "page" in report.per_layer:
        report.legacy_divergences = _check_legacy_identity(rows, config)
    report.fusion_divergences = _check_fusion_determinism(rows, keys, config)
    return report
