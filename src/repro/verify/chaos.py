"""Chaos parity: inject a fault into a distributed run, demand typed
failure, then demand exact recovery.

The contract under test is the whole fault-tolerance story end to end:

1. a pipeline run on a fault-injected YGM world must either **complete**
   (the fault never fired, or was a benign delay) or **fail typed** — one
   of the :mod:`repro.ygm.errors` classes, never a hang and never a bare
   exception;
2. re-invoking the same run with ``resume_from=`` on a *clean* world must
   then produce results **element-for-element identical** to an
   uninterrupted serial-oracle run — checkpointed stages must not leak any
   trace of the failed attempt.

``run_chaos`` executes that script for one seeded
:class:`~repro.ygm.faults.FaultPlan` and reports what happened; the
``repro-botnets verify --chaos --seed N`` CLI mode and the failure-matrix
tests drive it.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.pipeline.config import PipelineConfig
from repro.pipeline.framework import CoordinationPipeline
from repro.pipeline.results import PipelineResult
from repro.projection.window import TimeWindow
from repro.ygm.errors import YgmError
from repro.ygm.faults import FaultPlan
from repro.ygm.world import YgmWorld

__all__ = [
    "ChaosReport",
    "RecoveryChaosReport",
    "run_chaos",
    "run_recovery_chaos",
    "diff_results",
]

_DIFF_LIMIT = 4


@dataclass
class ChaosReport:
    """Outcome of one fault-injected parity run."""

    seed: int
    plan: str
    backend: str
    n_ranks: int
    #: ``"completed"`` (fault never bit), ``"failed-typed"`` (a
    #: :class:`~repro.ygm.errors.YgmError` subclass), or
    #: ``"failed-untyped"`` (contract violation).
    first_attempt: str = "completed"
    error: str | None = None
    resumed: bool = False
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Typed-or-clean failure AND exact post-recovery parity."""
        return self.first_attempt != "failed-untyped" and not self.divergences

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"chaos run: seed {self.seed}, plan [{self.plan}], "
            f"{self.n_ranks} ranks ({self.backend} backend)",
            f"  first attempt: {self.first_attempt}"
            + (f" — {self.error}" if self.error else ""),
        ]
        if self.resumed:
            lines.append("  resumed from checkpoint on a clean world")
        if self.ok:
            lines.append("  CHAOS PARITY OK — recovery matches the serial oracle exactly")
        else:
            lines.append(
                f"  CHAOS PARITY FAILED — {len(self.divergences)} divergence(s):"
            )
            lines += [f"    - {d}" for d in self.divergences]
        return "\n".join(lines)


def diff_results(ref: PipelineResult, got: PipelineResult) -> list[str]:
    """Element-for-element diff of two pipeline results (empty = equal)."""
    msgs: list[str] = []
    if ref.ci.edges.to_dict() != got.ci.edges.to_dict():
        msgs.append("CI edge lists differ")
    if not np.array_equal(ref.ci.page_counts, got.ci.page_counts):
        msgs.append("P' ledgers differ")
    if ref.triangles.n_triangles != got.triangles.n_triangles:
        msgs.append(
            f"triangle counts differ: {got.triangles.n_triangles} != "
            f"{ref.triangles.n_triangles}"
        )
    else:
        for fld in ("a", "b", "c", "w_ab", "w_ac", "w_bc"):
            rv, gv = getattr(ref.triangles, fld), getattr(got.triangles, fld)
            if not np.array_equal(rv, gv):
                msgs.append(f"triangle field {fld} differs")
        if not np.allclose(ref.t_scores, got.t_scores):
            msgs.append("T scores differ")
    if [c.members for c in ref.components] != [c.members for c in got.components]:
        msgs.append("component memberships differ")
    if (ref.triplet_metrics is None) != (got.triplet_metrics is None):
        msgs.append("hypergraph metrics present in only one result")
    elif ref.triplet_metrics is not None:
        if not np.array_equal(
            ref.triplet_metrics.w_xyz, got.triplet_metrics.w_xyz
        ) or not np.allclose(
            ref.triplet_metrics.c_scores, got.triplet_metrics.c_scores
        ):
            msgs.append("hypergraph metrics differ")
    return msgs[:_DIFF_LIMIT]


def run_chaos(
    comments: Sequence[tuple],
    window: TimeWindow,
    *,
    seed: int = 0,
    min_triangle_weight: int = 5,
    n_ranks: int = 2,
    backend: str = "mp",
    barrier_deadline: float = 30.0,
    checkpoint_dir: str | None = None,
    fault_plan: FaultPlan | None = None,
) -> ChaosReport:
    """One seeded chaos scenario over *comments* (see module docstring).

    Parameters
    ----------
    comments:
        ``(author, page, created_utc)`` triples.
    seed:
        Drives :meth:`FaultPlan.seeded` (ignored when *fault_plan* is
        given explicitly).
    backend:
        ``"mp"`` injects into real worker processes; ``"serial"`` uses the
        deterministic simulated faults (fast enough for CI loops).
    barrier_deadline:
        Liveness deadline armed on the faulted world, so even a hang fault
        resolves typed instead of stalling the harness.
    checkpoint_dir:
        Where stage artifacts land (a temp dir by default).
    """
    plan = (
        fault_plan
        if fault_plan is not None
        else FaultPlan.seeded(seed, n_ranks)
    )
    btm = BipartiteTemporalMultigraph.from_comments(list(comments))
    cfg = PipelineConfig(
        window=window, min_triangle_weight=min_triangle_weight
    )
    pipe = CoordinationPipeline(cfg)
    oracle = pipe.run(btm)

    report = ChaosReport(
        seed=seed, plan=plan.describe(), backend=backend, n_ranks=n_ranks
    )
    cp_dir = checkpoint_dir or tempfile.mkdtemp(prefix="repro-chaos-")

    faulted = YgmWorld(
        n_ranks,
        backend=backend,
        fault_plan=plan,
        barrier_deadline=barrier_deadline,
        exec_deadline=barrier_deadline,
    )
    first: PipelineResult | None = None
    try:
        first = pipe.run_distributed(btm, faulted, checkpoint_dir=cp_dir)
    except YgmError as exc:
        report.first_attempt = "failed-typed"
        report.error = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # contract violation: untyped escape
        report.first_attempt = "failed-untyped"
        report.error = f"{type(exc).__name__}: {exc}"
        return report
    finally:
        faulted.shutdown()

    if first is None:
        # Recovery: clean world, resume from whatever stages completed.
        with YgmWorld(
            n_ranks, backend=backend, barrier_deadline=barrier_deadline
        ) as clean:
            recovered = pipe.run_distributed(btm, clean, resume_from=cp_dir)
        report.resumed = True
        report.divergences = diff_results(oracle, recovered)
    else:
        report.divergences = diff_results(oracle, first)
    return report


# ---------------------------------------------------------------------------
# Recovery chaos: SIGKILL the durable serve tier, damage its files, demand
# bit-identical recovery (the WAL + snapshot contract of repro.store).
# ---------------------------------------------------------------------------

_CORRUPTIONS = ("none", "torn-tail", "corrupt-snapshot")


@dataclass
class RecoveryChaosReport:
    """Outcome of one kill-and-recover scenario against the durable store."""

    kill_at: int
    corruption: str
    fsync: str
    #: Child exit code (``-9`` = died to the injected SIGKILL as planned).
    child_exit: int | None = None
    #: Journal records the durable state covered at recovery time.
    applied_seq: int = 0
    #: Stream position recovered (events covered by the durable state).
    events_durable: int = 0
    records_replayed: int = 0
    snapshots_skipped: int = 0
    torn_tail: bool = False
    recovery: str = ""
    #: Recovered state vs the serial oracle stopped at the same record.
    divergences: list[str] = field(default_factory=list)
    #: After resuming the stream tail: final state vs a full serial run
    #: (empty when the tail was not resumed).
    resume_divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Planned kill, exact recovery, exact post-resume parity."""
        return (
            self.child_exit == -9
            and not self.divergences
            and not self.resume_divergences
        )

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"recovery chaos: kill at event {self.kill_at}, "
            f"corruption [{self.corruption}], fsync={self.fsync}",
            f"  child exit: {self.child_exit}",
            f"  {self.recovery}",
        ]
        if self.ok:
            lines.append(
                "  RECOVERY PARITY OK — recovered state matches the serial "
                "oracle exactly"
            )
        else:
            for name, diffs in (
                ("recovery", self.divergences),
                ("resume", self.resume_divergences),
            ):
                for d in diffs:
                    lines.append(f"  {name.upper()} DIVERGENCE: {d}")
            if self.child_exit != -9:
                lines.append(
                    f"  CHILD DID NOT DIE TO THE PLANNED SIGKILL "
                    f"(exit {self.child_exit})"
                )
        return "\n".join(lines)


def _drive_service(service, events, *, kill_at=None) -> None:
    """The one deterministic drive loop every recovery-chaos party runs.

    Feeding, backpressure ticking, and batch-threshold ticking must be
    byte-for-byte the same schedule in the killed child and in the
    serial oracle — the bit-identity assertion depends on it.  The loop
    never drains the tail: a killed process would not have either.
    """
    import os as _os
    import signal as _signal

    for i, event in enumerate(events):
        if kill_at is not None and i == kill_at:
            _os.kill(_os.getpid(), _signal.SIGKILL)
        while not service.submit(event):
            service.tick()
        if service.queue.depth >= service.batch_size:
            service.tick()


class _OracleStop(Exception):
    pass


def _oracle_snapshot(events, config, service_kwargs, n_records):
    """Serial in-memory state after exactly *n_records* journal-equivalent
    ticks of the shared drive loop (the recovery ground truth)."""
    from repro.serve.service import DetectionService

    class _Counting(DetectionService):
        _records = 0

        def _pre_apply(self, batch, cutoff):
            if not batch and cutoff is None:
                return
            if self._records >= n_records:
                raise _OracleStop()
            self._records += 1

    svc = _Counting(config, **service_kwargs)
    try:
        _drive_service(svc, events)
        svc.drain_all()
    except _OracleStop:
        pass
    return svc.engine.snapshot()


def _inject_corruption(directory, corruption: str) -> None:
    """Damage the durable files the way a real fault would."""
    from pathlib import Path

    root = Path(directory)
    if corruption == "torn-tail":
        segments = sorted((root / "wal").glob("wal-*.log"))
        if segments:
            with open(segments[-1], "ab") as fh:
                # A plausible header promising more payload than exists.
                fh.write(b"\x80\x00\x00\x00\xde\xad\xbe\xefhalf-a-record")
    elif corruption == "corrupt-snapshot":
        snaps = sorted((root / "snapshots").glob("snap-*/state.npz"))
        if snaps:
            data = bytearray(snaps[-1].read_bytes())
            data[len(data) // 2] ^= 0xFF
            snaps[-1].write_bytes(bytes(data))
    elif corruption != "none":
        raise ValueError(
            f"corruption must be one of {_CORRUPTIONS}, got {corruption!r}"
        )


def run_recovery_chaos(
    events: Sequence[tuple],
    config: PipelineConfig,
    *,
    kill_at: int,
    corruption: str = "none",
    fsync: str = "interval",
    snapshot_every: int = 8,
    batch_size: int = 32,
    window_horizon: int = 86_400,
    allowed_lateness: int = 0,
    directory: str | None = None,
    resume_tail: bool = True,
) -> RecoveryChaosReport:
    """Kill a durable serve process mid-stream, damage its files, recover.

    The scenario, end to end:

    1. fork a child that drives *events* through a
       :class:`~repro.serve.durable.DurableDetectionService` and
       SIGKILLs **itself** at event index *kill_at* — a real no-warning
       death, not an exception;
    2. optionally damage what it left behind (*corruption*:
       ``"torn-tail"`` appends a half-written record to the journal,
       ``"corrupt-snapshot"`` flips a byte inside the newest snapshot
       payload);
    3. recover in-process and compare the recovered engine
       **bit-for-bit** against a serial oracle stopped after the same
       number of journal records;
    4. with *resume_tail*, feed the recovered service the stream suffix
       its durable state does not cover and demand the final state match
       an uninterrupted serial run of the whole stream.

    Every step is deterministic, so a failure is reproducible from the
    report's parameters alone.
    """
    import tempfile as _tempfile

    if corruption not in _CORRUPTIONS:
        raise ValueError(
            f"corruption must be one of {_CORRUPTIONS}, got {corruption!r}"
        )
    report = RecoveryChaosReport(
        kill_at=kill_at, corruption=corruption, fsync=fsync
    )
    service_kwargs = dict(
        window_horizon=window_horizon,
        allowed_lateness=allowed_lateness,
        batch_size=batch_size,
    )
    root = directory or _tempfile.mkdtemp(prefix="repro-recovery-chaos-")
    events = [tuple(e) for e in events]
    try:
        return _run_recovery_chaos(
            report,
            events,
            config,
            root,
            kill_at=kill_at,
            corruption=corruption,
            fsync=fsync,
            snapshot_every=snapshot_every,
            resume_tail=resume_tail,
            service_kwargs=service_kwargs,
        )
    finally:
        if directory is None:
            # The harness owns a directory it created; a caller-provided
            # one (e.g. a pytest tmp_path) is the caller's to keep.
            import shutil

            shutil.rmtree(root, ignore_errors=True)


def _run_recovery_chaos(
    report: "RecoveryChaosReport",
    events: list,
    config,
    root,
    *,
    kill_at,
    corruption: str,
    fsync: str,
    snapshot_every: int,
    resume_tail: bool,
    service_kwargs: dict,
) -> "RecoveryChaosReport":
    import multiprocessing

    from repro.serve.durable import DurableDetectionService
    from repro.serve.service import DetectionService

    def _victim() -> None:
        svc = DurableDetectionService(
            config,
            directory=root,
            fsync=fsync,
            snapshot_every=snapshot_every,
            snapshot_on_close=False,
            **service_kwargs,
        )
        _drive_service(svc, events, kill_at=kill_at)
        svc.close()  # only reached when kill_at is past the stream end

    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_victim)
    proc.start()
    proc.join()
    report.child_exit = proc.exitcode

    _inject_corruption(root, corruption)

    recovered = DurableDetectionService(
        config,
        directory=root,
        fsync=fsync,
        snapshot_every=snapshot_every,
        **service_kwargs,
    )
    rec = recovered.recovery
    report.applied_seq = rec.applied_seq
    report.events_durable = rec.events_durable
    report.records_replayed = rec.records_replayed
    report.snapshots_skipped = len(rec.snapshots_skipped)
    report.torn_tail = rec.torn_tail
    report.recovery = rec.describe()

    oracle = _oracle_snapshot(events, config, service_kwargs, rec.applied_seq)
    report.divergences = diff_results(oracle, recovered.engine.snapshot())

    if resume_tail:
        _drive_service(recovered, events[rec.events_durable :])
        recovered.drain_all()
        full = DetectionService(config, **service_kwargs)
        _drive_service(full, events)
        full.drain_all()
        report.resume_divergences = diff_results(
            full.engine.snapshot(), recovered.engine.snapshot()
        )
    recovered.close()
    return report
