"""Chaos parity: inject a fault into a distributed run, demand typed
failure, then demand exact recovery.

The contract under test is the whole fault-tolerance story end to end:

1. a pipeline run on a fault-injected YGM world must either **complete**
   (the fault never fired, or was a benign delay) or **fail typed** — one
   of the :mod:`repro.ygm.errors` classes, never a hang and never a bare
   exception;
2. re-invoking the same run with ``resume_from=`` on a *clean* world must
   then produce results **element-for-element identical** to an
   uninterrupted serial-oracle run — checkpointed stages must not leak any
   trace of the failed attempt.

``run_chaos`` executes that script for one seeded
:class:`~repro.ygm.faults.FaultPlan` and reports what happened; the
``repro-botnets verify --chaos --seed N`` CLI mode and the failure-matrix
tests drive it.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.pipeline.config import PipelineConfig
from repro.pipeline.framework import CoordinationPipeline
from repro.pipeline.results import PipelineResult
from repro.projection.window import TimeWindow
from repro.ygm.errors import YgmError
from repro.ygm.faults import FaultPlan
from repro.ygm.world import YgmWorld

__all__ = ["ChaosReport", "run_chaos", "diff_results"]

_DIFF_LIMIT = 4


@dataclass
class ChaosReport:
    """Outcome of one fault-injected parity run."""

    seed: int
    plan: str
    backend: str
    n_ranks: int
    #: ``"completed"`` (fault never bit), ``"failed-typed"`` (a
    #: :class:`~repro.ygm.errors.YgmError` subclass), or
    #: ``"failed-untyped"`` (contract violation).
    first_attempt: str = "completed"
    error: str | None = None
    resumed: bool = False
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Typed-or-clean failure AND exact post-recovery parity."""
        return self.first_attempt != "failed-untyped" and not self.divergences

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"chaos run: seed {self.seed}, plan [{self.plan}], "
            f"{self.n_ranks} ranks ({self.backend} backend)",
            f"  first attempt: {self.first_attempt}"
            + (f" — {self.error}" if self.error else ""),
        ]
        if self.resumed:
            lines.append("  resumed from checkpoint on a clean world")
        if self.ok:
            lines.append("  CHAOS PARITY OK — recovery matches the serial oracle exactly")
        else:
            lines.append(
                f"  CHAOS PARITY FAILED — {len(self.divergences)} divergence(s):"
            )
            lines += [f"    - {d}" for d in self.divergences]
        return "\n".join(lines)


def diff_results(ref: PipelineResult, got: PipelineResult) -> list[str]:
    """Element-for-element diff of two pipeline results (empty = equal)."""
    msgs: list[str] = []
    if ref.ci.edges.to_dict() != got.ci.edges.to_dict():
        msgs.append("CI edge lists differ")
    if not np.array_equal(ref.ci.page_counts, got.ci.page_counts):
        msgs.append("P' ledgers differ")
    if ref.triangles.n_triangles != got.triangles.n_triangles:
        msgs.append(
            f"triangle counts differ: {got.triangles.n_triangles} != "
            f"{ref.triangles.n_triangles}"
        )
    else:
        for fld in ("a", "b", "c", "w_ab", "w_ac", "w_bc"):
            rv, gv = getattr(ref.triangles, fld), getattr(got.triangles, fld)
            if not np.array_equal(rv, gv):
                msgs.append(f"triangle field {fld} differs")
        if not np.allclose(ref.t_scores, got.t_scores):
            msgs.append("T scores differ")
    if [c.members for c in ref.components] != [c.members for c in got.components]:
        msgs.append("component memberships differ")
    if (ref.triplet_metrics is None) != (got.triplet_metrics is None):
        msgs.append("hypergraph metrics present in only one result")
    elif ref.triplet_metrics is not None:
        if not np.array_equal(
            ref.triplet_metrics.w_xyz, got.triplet_metrics.w_xyz
        ) or not np.allclose(
            ref.triplet_metrics.c_scores, got.triplet_metrics.c_scores
        ):
            msgs.append("hypergraph metrics differ")
    return msgs[:_DIFF_LIMIT]


def run_chaos(
    comments: Sequence[tuple],
    window: TimeWindow,
    *,
    seed: int = 0,
    min_triangle_weight: int = 5,
    n_ranks: int = 2,
    backend: str = "mp",
    barrier_deadline: float = 30.0,
    checkpoint_dir: str | None = None,
    fault_plan: FaultPlan | None = None,
) -> ChaosReport:
    """One seeded chaos scenario over *comments* (see module docstring).

    Parameters
    ----------
    comments:
        ``(author, page, created_utc)`` triples.
    seed:
        Drives :meth:`FaultPlan.seeded` (ignored when *fault_plan* is
        given explicitly).
    backend:
        ``"mp"`` injects into real worker processes; ``"serial"`` uses the
        deterministic simulated faults (fast enough for CI loops).
    barrier_deadline:
        Liveness deadline armed on the faulted world, so even a hang fault
        resolves typed instead of stalling the harness.
    checkpoint_dir:
        Where stage artifacts land (a temp dir by default).
    """
    plan = (
        fault_plan
        if fault_plan is not None
        else FaultPlan.seeded(seed, n_ranks)
    )
    btm = BipartiteTemporalMultigraph.from_comments(list(comments))
    cfg = PipelineConfig(
        window=window, min_triangle_weight=min_triangle_weight
    )
    pipe = CoordinationPipeline(cfg)
    oracle = pipe.run(btm)

    report = ChaosReport(
        seed=seed, plan=plan.describe(), backend=backend, n_ranks=n_ranks
    )
    cp_dir = checkpoint_dir or tempfile.mkdtemp(prefix="repro-chaos-")

    faulted = YgmWorld(
        n_ranks,
        backend=backend,
        fault_plan=plan,
        barrier_deadline=barrier_deadline,
        exec_deadline=barrier_deadline,
    )
    first: PipelineResult | None = None
    try:
        first = pipe.run_distributed(btm, faulted, checkpoint_dir=cp_dir)
    except YgmError as exc:
        report.first_attempt = "failed-typed"
        report.error = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # contract violation: untyped escape
        report.first_attempt = "failed-untyped"
        report.error = f"{type(exc).__name__}: {exc}"
        return report
    finally:
        faulted.shutdown()

    if first is None:
        # Recovery: clean world, resume from whatever stages completed.
        with YgmWorld(
            n_ranks, backend=backend, barrier_deadline=barrier_deadline
        ) as clean:
            recovered = pipe.run_distributed(btm, clean, resume_from=cp_dir)
        report.resumed = True
        report.divergences = diff_results(oracle, recovered)
    else:
        report.divergences = diff_results(oracle, first)
    return report
