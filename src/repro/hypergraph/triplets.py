"""Triplet hyperedge weights and coordination scores (eqs. 2–4).

Thin orchestration over the kernel layer: ``hyperedge_weight`` wraps
:func:`repro.kernels.intersect3_sorted` for one triplet;
``evaluate_triplets`` runs :data:`repro.exec.plans.VALIDATION_PLAN` on a
:class:`~repro.exec.SerialExecutor`, evaluating *every* triangle
surviving Step 2 in one vectorized :func:`repro.kernels.hyperedge_count`
pass, and packages the paper's Step 3 output: ``w_xyz``,
``p_x + p_y + p_z``, and ``C(x, y, z)``.  ``all_triplets_brute``
enumerates *every* triplet with a nonzero hyperedge weight directly from
the incidence — the exponential direct approach the paper's pruning
avoids, kept as the recall oracle and as the naive baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.exec.executors import SerialExecutor
from repro.exec.plans import (
    VALIDATION_PLAN,
    VALIDATION_TRIPLETS_PER_SECOND,
    adaptive_shard_count,
    triplet_range_shards,
)
from repro.hypergraph.incidence import UserPageIncidence
from repro.kernels import (
    hyperedge_count_reference,
    intersect3_sorted,
    normalized_scores,
)
from repro.tripoll.survey import TriangleSet

__all__ = [
    "TripletMetrics",
    "hyperedge_weight",
    "evaluate_triplets",
    "all_triplets_brute",
]


def hyperedge_weight(inc: UserPageIncidence, x: int, y: int, z: int) -> int:
    """``w_xyz`` (eq. 2): pages where *x*, *y*, *z* all comment.

    Intersects the two smallest slices first — the cheap algorithmic win
    the optimization guide prescribes (compute less before computing fast).
    """
    return int(
        intersect3_sorted(
            inc.pages_of(x), inc.pages_of(y), inc.pages_of(z)
        ).shape[0]
    )


@dataclass
class TripletMetrics:
    """Step 3 output for a set of candidate triplets.

    Attributes
    ----------
    triangles:
        The surveyed triangles the metrics are aligned to (Step 2 output,
        with CI edge weights).
    w_xyz:
        True hyperedge weight per triplet (eq. 2).
    p_sum:
        ``p_x + p_y + p_z`` per triplet (eq. 3 summed).
    c_scores:
        ``C(x, y, z)`` per triplet (eq. 4), in ``[0, 1]``.
    """

    triangles: TriangleSet
    w_xyz: np.ndarray
    p_sum: np.ndarray
    c_scores: np.ndarray

    @property
    def n_triplets(self) -> int:
        """Number of evaluated triplets."""
        return int(self.w_xyz.shape[0])

    def top_by_c(self, k: int) -> np.ndarray:
        """Indices of the *k* highest ``C`` scores (descending)."""
        order = np.argsort(-self.c_scores, kind="stable")
        return order[:k]

    def top_by_weight(self, k: int) -> np.ndarray:
        """Indices of the *k* highest hyperedge weights (descending)."""
        order = np.argsort(-self.w_xyz, kind="stable")
        return order[:k]

    def filter_mask(self, mask: np.ndarray) -> "TripletMetrics":
        """Restrict to triplets selected by a boolean mask."""
        return TripletMetrics(
            triangles=self.triangles.filter_mask(mask),
            w_xyz=self.w_xyz[mask],
            p_sum=self.p_sum[mask],
            c_scores=self.c_scores[mask],
        )


def evaluate_triplets(
    inc: UserPageIncidence,
    triangles: TriangleSet,
    *,
    executor=None,
    n_shards: int | None = None,
) -> TripletMetrics:
    """Compute eqs. 2–4 for every surveyed triangle.

    *executor* runs :data:`~repro.exec.plans.VALIDATION_PLAN` (defaults
    to an in-process :class:`~repro.exec.SerialExecutor`); *n_shards*
    cuts the triplet list into that many range shards (defaults to
    adaptive sizing — ~100 ms of work per shard, at least one per
    worker, 1 for serial).  The count concatenation is shard-ordered,
    so every executor returns identical metrics.

    Examples
    --------
    >>> from repro.graph import BipartiteTemporalMultigraph
    >>> from repro.graph.edgelist import EdgeList
    >>> from repro.tripoll import survey_triangles
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [(u, p, 0) for p in ("p1", "p2") for u in ("a", "b", "c")]
    ... )
    >>> inc = UserPageIncidence.from_btm(btm)
    >>> tri = survey_triangles(EdgeList([0, 0, 1], [1, 2, 2]))
    >>> m = evaluate_triplets(inc, tri)
    >>> m.w_xyz.tolist(), m.c_scores.tolist()
    ([2], [1.0])
    """
    if executor is None:
        executor = SerialExecutor()
    if n_shards is None:
        n_shards = adaptive_shard_count(
            triangles.n_triangles,
            getattr(executor, "n_workers", 1),
            VALIDATION_TRIPLETS_PER_SECOND,
        )
    shards = triplet_range_shards(
        triangles.a, triangles.b, triangles.c, max(1, n_shards)
    )
    context = {"indptr": inc.indptr, "page_ids": inc.page_ids}
    w = executor.run(VALIDATION_PLAN, shards, context)
    p = inc.page_counts()
    p_sum = (p[triangles.a] + p[triangles.b] + p[triangles.c]).astype(np.int64)
    c = normalized_scores(w, p_sum)
    return TripletMetrics(triangles=triangles, w_xyz=w, p_sum=p_sum, c_scores=c)


def all_triplets_brute(
    inc: UserPageIncidence, min_weight: int = 1
) -> dict[tuple[int, int, int], int]:
    """Every triplet with ``w_xyz >= min_weight``, by direct enumeration.

    This is the computation the paper's three-step pruning exists to
    avoid — O(Σ |users(p)|³) — usable only at oracle scale.  Returns
    ``{(x, y, z): w_xyz}`` with ``x < y < z``.
    """
    candidates: set[tuple[int, int, int]] = set()
    for _page, users in inc.users_per_page().items():
        if users.shape[0] < 3:
            continue
        candidates.update(combinations(users.tolist(), 3))
    if not candidates:
        return {}
    trips = sorted(candidates)
    arr = np.asarray(trips, dtype=np.int64)
    # The counting itself goes through the kernel's reference twin.
    w = hyperedge_count_reference(
        inc.indptr, inc.page_ids, arr[:, 0], arr[:, 1], arr[:, 2]
    )
    return {
        trip: int(wi)
        for trip, wi in zip(trips, w.tolist())
        if wi >= min_weight
    }
