"""Time-windowed hyperedges — the paper's first future-work direction (§4.3).

The paper's Step 3 counts a page toward ``w_xyz`` whenever all three
authors comment on it *at any time*, which "loses provable bounds based
on the common interaction graph data" (§4.2): an un-windowed hyperedge
can outweigh the windowed minimum triangle weight (visible above the
diagonal in Figures 8 and 10).

This module implements the windowed definition the paper proposes to
study: a page contributes to the **windowed hyperedge weight**
``w^Δ_xyz`` iff there exist comments by *x*, *y*, *z* on it whose three
pairwise delays all lie in ``[δ1, δ2]``.

**Theorem (the bound the paper wants).**  For any triplet and any window,
``w^Δ_xyz ≤ min{w'_xy, w'_yz, w'_xz}`` where ``w'`` are the CI-graph
weights for the same window: a page with a pairwise-in-window triple of
comments is, pair by pair, a page with an in-window comment pair, so it
is counted in each pair's ``S_xy`` (eq. 5).  Hence every windowed
hyperedge page is counted by every triangle edge, and the minimum edge
weight dominates.  The property tests verify the inequality on arbitrary
corpora; the extension benchmark shows the resulting below-diagonal
relationship that Figures 8/10 lack.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.kernels import intersect3_sorted
from repro.projection.window import TimeWindow
from repro.tripoll.survey import TriangleSet

__all__ = ["WindowedTripletEvaluator"]


class WindowedTripletEvaluator:
    """Computes ``w^Δ_xyz`` for candidate triplets against a BTM.

    Construction indexes the BTM once: per ``(user, page)``, the sorted
    comment-time list.  Queries then touch only the three users' common
    pages.

    Examples
    --------
    >>> btm = BipartiteTemporalMultigraph.from_comments([
    ...     ("x", "p", 0), ("y", "p", 30), ("z", "p", 50),
    ...     ("x", "q", 0), ("y", "q", 30), ("z", "q", 5000),
    ... ])
    >>> ev = WindowedTripletEvaluator(btm)
    >>> ev.windowed_weight(0, 1, 2, TimeWindow(0, 60))   # only page p
    1
    """

    def __init__(self, btm: BipartiteTemporalMultigraph) -> None:
        self._times: dict[tuple[int, int], np.ndarray] = {}
        pages_of: dict[int, list[int]] = {}
        order = np.lexsort((btm.times, btm.pages, btm.users))
        users = btm.users[order]
        pages = btm.pages[order]
        times = btm.times[order]
        n = users.shape[0]
        start = 0
        while start < n:
            stop = start
            u, p = int(users[start]), int(pages[start])
            while stop < n and users[stop] == u and pages[stop] == p:
                stop += 1
            self._times[(u, p)] = times[start:stop]
            pages_of.setdefault(u, []).append(p)
            start = stop
        self._pages_of: dict[int, np.ndarray] = {
            u: np.asarray(ps, dtype=np.int64) for u, ps in pages_of.items()
        }

    # -- queries ------------------------------------------------------------
    def common_pages(self, x: int, y: int, z: int) -> np.ndarray:
        """Pages on which all three users comment (sorted)."""
        px = self._pages_of.get(x)
        py = self._pages_of.get(y)
        pz = self._pages_of.get(z)
        if px is None or py is None or pz is None:
            return np.empty(0, dtype=np.int64)
        return intersect3_sorted(px, py, pz)

    def windowed_weight(
        self, x: int, y: int, z: int, window: TimeWindow
    ) -> int:
        """``w^Δ_xyz``: common pages with a pairwise-in-window comment triple."""
        count = 0
        for page in self.common_pages(x, y, z):
            ts = (
                self._times[(x, int(page))],
                self._times[(y, int(page))],
                self._times[(z, int(page))],
            )
            if _has_windowed_triple(ts, window):
                count += 1
        return count

    def evaluate(
        self, triangles: TriangleSet, window: TimeWindow
    ) -> np.ndarray:
        """``w^Δ_xyz`` for every triangle of a survey, as an int64 array."""
        out = np.zeros(triangles.n_triangles, dtype=np.int64)
        for i in range(triangles.n_triangles):
            out[i] = self.windowed_weight(
                int(triangles.a[i]),
                int(triangles.b[i]),
                int(triangles.c[i]),
                window,
            )
        return out


def _has_windowed_triple(
    times: tuple[np.ndarray, np.ndarray, np.ndarray], window: TimeWindow
) -> bool:
    """Whether ∃ (t_x, t_y, t_z) with all pairwise delays in [δ1, δ2].

    Fast path for ``δ1 == 0`` (the common analysis setting): the pairwise
    condition degenerates to ``max − min <= δ2``, checked with a sweep
    over the merged, labelled time line.  The general ``δ1 > 0`` case
    additionally requires every pair to be at least ``δ1`` apart and uses
    a pruned triple loop (per-page comment lists are short).
    """
    tx, ty, tz = times
    if window.delta1 == 0:
        merged = np.concatenate((tx, ty, tz))
        labels = np.concatenate(
            (
                np.zeros(tx.shape[0], dtype=np.int8),
                np.ones(ty.shape[0], dtype=np.int8),
                np.full(tz.shape[0], 2, dtype=np.int8),
            )
        )
        order = np.argsort(merged, kind="stable")
        merged = merged[order]
        labels = labels[order]
        # Two-pointer sweep: smallest window containing all three labels.
        counts = np.zeros(3, dtype=np.int64)
        left = 0
        have = 0
        for right in range(merged.shape[0]):
            lab = labels[right]
            counts[lab] += 1
            if counts[lab] == 1:
                have += 1
            while have == 3:
                if merged[right] - merged[left] <= window.delta2:
                    return True
                counts[labels[left]] -= 1
                if counts[labels[left]] == 0:
                    have -= 1
                left += 1
        return False

    # General case: pairwise delays in [δ1, δ2] with δ1 > 0.
    for t_x in tx.tolist():
        # y candidates within [δ1, δ2] of t_x on either side.
        for t_y in _near(ty, t_x, window):
            for t_z in _near(tz, t_x, window):
                if window.contains(abs(t_z - t_y)):
                    return True
    return False


def _near(ts: np.ndarray, anchor: int, window: TimeWindow) -> list[int]:
    """Times in ``ts`` whose absolute delay from *anchor* is in the window."""
    lo1 = np.searchsorted(ts, anchor - window.delta2, side="left")
    hi1 = np.searchsorted(ts, anchor - window.delta1, side="right")
    lo2 = np.searchsorted(ts, anchor + window.delta1, side="left")
    hi2 = np.searchsorted(ts, anchor + window.delta2, side="right")
    return ts[lo1:hi1].tolist() + ts[lo2:hi2].tolist()
