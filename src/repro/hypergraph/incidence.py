"""The deduplicated user–page incidence (the hypergraph's incidence graph).

Paper §2.4: "making the edges of the bipartite temporal multigraph B
unique, and using the result as a bipartite incidence graph … so we can
compute hyperedge metrics for author triplets."  Stored CSR-style: each
user's distinct page ids as a sorted slice, so triplet hyperedge weights
are sorted-array intersections.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.util.grouping import group_boundaries

__all__ = ["UserPageIncidence"]


class UserPageIncidence:
    """Per-user sorted distinct-page slices.

    Examples
    --------
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p1", 0), ("a", "p1", 5), ("a", "p2", 9), ("b", "p1", 7)]
    ... )
    >>> inc = UserPageIncidence.from_btm(btm)
    >>> inc.pages_of(0).tolist()   # repeat comment on p1 collapsed
    [0, 1]
    >>> inc.page_count(1)
    1
    """

    __slots__ = ("indptr", "page_ids", "n_users")

    def __init__(self, indptr: np.ndarray, page_ids: np.ndarray, n_users: int) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.page_ids = np.asarray(page_ids, dtype=np.int64)
        self.n_users = int(n_users)
        if self.indptr.shape[0] != self.n_users + 1:
            raise ValueError(
                f"indptr length {self.indptr.shape[0]} != n_users+1 ({self.n_users + 1})"
            )

    @classmethod
    def from_btm(cls, btm: BipartiteTemporalMultigraph) -> "UserPageIncidence":
        """Build from a BTM by deduplicating its ``(user, page)`` edges."""
        users, pages = btm.user_page_incidence()
        n_users = btm.user_id_space
        indptr = np.zeros(n_users + 1, dtype=np.int64)
        if users.size:
            counts = np.bincount(users, minlength=n_users)
            np.cumsum(counts, out=indptr[1:])
        return cls(indptr, pages, n_users)

    def pages_of(self, user: int) -> np.ndarray:
        """Sorted distinct page ids user *user* commented on (a view)."""
        return self.page_ids[self.indptr[user] : self.indptr[user + 1]]

    def page_count(self, user: int) -> int:
        """``p_x`` (eq. 3) for one user."""
        return int(self.indptr[user + 1] - self.indptr[user])

    def page_counts(self) -> np.ndarray:
        """``p_x`` for every user id."""
        return np.diff(self.indptr)

    def pair_weight(self, x: int, y: int) -> int:
        """Number of pages both *x* and *y* comment on (pairwise analogue)."""
        return int(
            np.intersect1d(
                self.pages_of(x), self.pages_of(y), assume_unique=True
            ).shape[0]
        )

    def users_per_page(self) -> dict[int, np.ndarray]:
        """Inverse view: page id → sorted distinct user ids (brute oracles)."""
        order = np.argsort(
            self.page_ids
            + np.repeat(np.arange(self.n_users), self.page_counts()) * 0,
            kind="stable",
        )
        users_flat = np.repeat(
            np.arange(self.n_users, dtype=np.int64), self.page_counts()
        )
        pages_sorted = self.page_ids[order]
        users_sorted = users_flat[order]
        bounds = group_boundaries(pages_sorted)
        out: dict[int, np.ndarray] = {}
        for i in range(bounds.shape[0] - 1):
            start, stop = int(bounds[i]), int(bounds[i + 1])
            out[int(pages_sorted[start])] = np.sort(users_sorted[start:stop])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UserPageIncidence(n_users={self.n_users}, "
            f"n_incidences={self.page_ids.shape[0]})"
        )
