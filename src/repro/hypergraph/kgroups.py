"""Group-level hypergraph metrics — coordination beyond triplets (§4.3).

The paper's hyperedge weight generalizes past triplets naturally: for a
group ``G`` and quorum ``m``, count the pages where at least ``m`` members
of ``G`` comment.  With ``m = |G|`` this is the strict all-members
hyperedge; smaller quorums tolerate the subset-participation behaviour of
generation nets (§3.1.1, where "a subset of bots are chosen randomly from
the full set to create comments").

The normalized group score mirrors eq. 4::

    C_m(G) = m · w_m(G) / Σ_{x∈G} p_x  ∈ [0, 1]

(bounded because every quorum page appears in at least *m* members' page
sets, so ``Σ p_x >= m · w_m(G)``; with ``m = |G| = 3`` this is exactly
eq. 4.  The property tests verify the unit bound directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hypergraph.incidence import UserPageIncidence

__all__ = ["GroupMetrics", "group_hyperedge_weight", "evaluate_group"]


def group_hyperedge_weight(
    inc: UserPageIncidence, members: Sequence[int], quorum: int
) -> int:
    """Number of pages where at least *quorum* of *members* comment.

    Examples
    --------
    >>> from repro.graph import BipartiteTemporalMultigraph
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p1", 0), ("b", "p1", 1), ("c", "p1", 2),
    ...      ("a", "p2", 0), ("b", "p2", 1)]
    ... )
    >>> inc = UserPageIncidence.from_btm(btm)
    >>> group_hyperedge_weight(inc, [0, 1, 2], quorum=3)
    1
    >>> group_hyperedge_weight(inc, [0, 1, 2], quorum=2)
    2
    """
    members = list(dict.fromkeys(int(m) for m in members))
    if not 1 <= quorum <= len(members):
        raise ValueError(
            f"quorum must be in [1, {len(members)}], got {quorum}"
        )
    pages = np.concatenate([inc.pages_of(m) for m in members])
    if pages.shape[0] == 0:
        return 0
    _unique, counts = np.unique(pages, return_counts=True)
    return int((counts >= quorum).sum())


@dataclass(frozen=True)
class GroupMetrics:
    """Quorum-resolved coordination profile of one candidate group.

    Attributes
    ----------
    members:
        The evaluated group (deduplicated, sorted).
    quorum_weights:
        ``w_m(G)`` for every quorum ``m = 1..|G|`` (index 0 is m=1).
    p_sum:
        ``Σ p_x`` over members.
    """

    members: tuple[int, ...]
    quorum_weights: tuple[int, ...]
    p_sum: int

    @property
    def size(self) -> int:
        return len(self.members)

    def weight(self, quorum: int) -> int:
        """``w_m(G)`` for one quorum."""
        return self.quorum_weights[quorum - 1]

    def score(self, quorum: int) -> float:
        """``C_m(G) = m·w_m(G)/Σp_x`` — in ``[0, 1]`` (eq. 4 at m=|G|=3)."""
        if self.p_sum == 0:
            return 0.0
        return quorum * self.weight(quorum) / self.p_sum

    @property
    def strict_weight(self) -> int:
        """All-members hyperedge weight (quorum = |G|)."""
        return self.quorum_weights[-1]

    def participation_profile(self) -> tuple[float, ...]:
        """Fraction of quorum-1 pages retained at each quorum.

        A share-reshare clique stays near 1.0 out to high quorums; a
        subset-participation generation net decays — the structural
        contrast of paper §3.1.1 vs §3.1.2, at group level.
        """
        base = max(self.quorum_weights[0], 1)
        return tuple(w / base for w in self.quorum_weights)


def evaluate_group(
    inc: UserPageIncidence, members: Sequence[int]
) -> GroupMetrics:
    """Compute the full quorum profile of a group in one pass."""
    uniq = sorted(dict.fromkeys(int(m) for m in members))
    if not uniq:
        raise ValueError("group must have at least one member")
    pages = np.concatenate([inc.pages_of(m) for m in uniq]) if uniq else np.empty(0)
    p_sum = int(sum(inc.page_count(m) for m in uniq))
    if pages.shape[0] == 0:
        weights = tuple(0 for _ in uniq)
    else:
        _unique, counts = np.unique(pages, return_counts=True)
        weights = tuple(
            int((counts >= quorum).sum()) for quorum in range(1, len(uniq) + 1)
        )
    return GroupMetrics(
        members=tuple(uniq), quorum_weights=weights, p_sum=p_sum
    )
