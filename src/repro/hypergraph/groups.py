"""Agglomerating verified triplets into larger candidate botnets.

The paper's framework stops at triplets but notes (§2.1.2, §4.2) that
"these methods … still leave the possibility for larger groups to be
formed after triplets of interest have been shown to exhibit coordination".
This module implements that post-processing: triplets passing a
coordination bar are merged whenever they share a pair of authors
(sharing a full edge — rather than a single author — keeps hub users from
gluing unrelated botnets together), and each merged group is reported with
its member set and supporting-triplet count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import UnionFind
from repro.hypergraph.triplets import TripletMetrics

__all__ = ["CandidateGroup", "agglomerate_groups"]


@dataclass(frozen=True)
class CandidateGroup:
    """A merged coordination candidate.

    Attributes
    ----------
    members:
        Sorted author ids in the group.
    n_triplets:
        Number of verified triplets supporting the group.
    mean_c_score:
        Mean ``C(x, y, z)`` over the supporting triplets.
    min_w_xyz, max_w_xyz:
        Range of supporting hyperedge weights.
    """

    members: tuple[int, ...]
    n_triplets: int
    mean_c_score: float
    min_w_xyz: int
    max_w_xyz: int

    @property
    def size(self) -> int:
        return len(self.members)


def agglomerate_groups(
    metrics: TripletMetrics,
    min_c_score: float = 0.0,
    min_w_xyz: int = 1,
) -> list[CandidateGroup]:
    """Merge qualifying triplets into maximal pair-linked groups.

    Parameters
    ----------
    metrics:
        Step 3 output.
    min_c_score, min_w_xyz:
        A triplet must meet both bars to participate.

    Returns
    -------
    Groups sorted by size (descending), then by mean ``C`` (descending).

    Examples
    --------
    Two triplets sharing the pair ``(1, 2)`` merge into one 4-author group::

        {1, 2, 3} + {1, 2, 4}  ->  members (1, 2, 3, 4)
    """
    mask = (metrics.c_scores >= min_c_score) & (metrics.w_xyz >= min_w_xyz)
    kept = metrics.filter_mask(mask)
    n = kept.n_triplets
    if n == 0:
        return []

    # Union triplets that share an unordered author pair.
    uf = UnionFind(n)
    pair_to_first: dict[tuple[int, int], int] = {}
    tri = kept.triangles
    for i in range(n):
        a, b, c = int(tri.a[i]), int(tri.b[i]), int(tri.c[i])
        for pair in ((a, b), (a, c), (b, c)):
            j = pair_to_first.setdefault(pair, i)
            if j != i:
                uf.union(i, j)

    by_root: dict[int, list[int]] = {}
    for i in range(n):
        by_root.setdefault(uf.find(i), []).append(i)

    groups: list[CandidateGroup] = []
    for triplet_ids in by_root.values():
        idx = np.asarray(triplet_ids, dtype=np.int64)
        members = np.unique(
            np.concatenate((tri.a[idx], tri.b[idx], tri.c[idx]))
        )
        groups.append(
            CandidateGroup(
                members=tuple(int(m) for m in members),
                n_triplets=len(triplet_ids),
                mean_c_score=float(kept.c_scores[idx].mean()),
                min_w_xyz=int(kept.w_xyz[idx].min()),
                max_w_xyz=int(kept.w_xyz[idx].max()),
            )
        )
    groups.sort(key=lambda g: (-g.size, -g.mean_c_score, g.members))
    return groups
