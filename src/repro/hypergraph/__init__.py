"""Step 3 — hypergraph validation of candidate triplets (paper §2.1.2–§2.1.3, §2.4).

After Steps 1–2 prune the O(|U|³) triplet space to the triangles of the
thresholded common-interaction graph, Step 3 returns to the original
bipartite data and computes the *true* multiway interaction counts:

- ``w_xyz`` — the triplet hyperedge weight: the number of distinct pages
  where all three authors comment at least once (eq. 2), computed over the
  deduplicated user–page incidence (:mod:`~repro.hypergraph.incidence`).
- ``p_x`` — distinct pages per author (eq. 3).
- ``C(x, y, z) = 3·w_xyz / (p_x + p_y + p_z) ∈ [0, 1]`` — the normalized
  triplet coordination score (eq. 4).

:mod:`~repro.hypergraph.triplets` evaluates these in bulk for a surveyed
:class:`~repro.tripoll.TriangleSet`; :mod:`~repro.hypergraph.groups`
agglomerates verified triplets into larger candidate botnets (the paper's
"larger groups formed after the fact", §4.2).
"""

from repro.hypergraph.incidence import UserPageIncidence
from repro.hypergraph.triplets import (
    TripletMetrics,
    evaluate_triplets,
    hyperedge_weight,
    all_triplets_brute,
)
from repro.hypergraph.groups import agglomerate_groups
from repro.hypergraph.windowed import WindowedTripletEvaluator
from repro.hypergraph.kgroups import (
    GroupMetrics,
    evaluate_group,
    group_hyperedge_weight,
)
from repro.hypergraph.distributed import evaluate_triplets_distributed

__all__ = [
    "UserPageIncidence",
    "TripletMetrics",
    "evaluate_triplets",
    "hyperedge_weight",
    "all_triplets_brute",
    "agglomerate_groups",
    "WindowedTripletEvaluator",
    "GroupMetrics",
    "evaluate_group",
    "group_hyperedge_weight",
    "evaluate_triplets_distributed",
]
