"""Distributed Step 3 — hypergraph validation on the YGM runtime.

Paper §2.4: "the distributed containers of YGM can accelerate this
process by dividing up authors to be checked among several compute
nodes."  The decomposition here is the canonical YGM chain-visit:

1. every author's sorted distinct-page slice is inserted into a
   :class:`~repro.ygm.DistMap` keyed by author id;
2. for each candidate triplet ``(x, y, z)``, a visit at ``owner(x)``
   forwards ``pages(x)`` to ``owner(y)``, which intersects with
   ``pages(y)`` and forwards the (now no larger) running intersection to
   ``owner(z)``, which finishes the count and deposits
   ``(triplet, w_xyz, p_sum)`` into a result bag;
3. the driver gathers the bag and assembles a
   :class:`~repro.hypergraph.triplets.TripletMetrics` aligned to the
   input triangles.

Results equal :func:`repro.hypergraph.triplets.evaluate_triplets` exactly
(tests assert it on both backends).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.hypergraph.incidence import UserPageIncidence
from repro.hypergraph.triplets import TripletMetrics
from repro.tripoll.survey import TriangleSet
from repro.ygm.containers.bag import DistBag
from repro.ygm.containers.map import DistMap
from repro.ygm.handlers import ygm_handler
from repro.ygm.partition import HashPartitioner
from repro.ygm.world import YgmWorld

__all__ = ["evaluate_triplets_distributed"]


@ygm_handler("repro.hg.start")
def _h_start(ctx, state: dict, payload) -> None:
    """Visit at owner(x): launch the intersection chain."""
    triplet_id, x, y, z, cid, bag_cid = payload
    pages_x, px = state.get(x, ((), 0))
    part = HashPartitioner(ctx.n_ranks)
    ctx.send(
        part.owner(y),
        cid,
        "repro.hg.intersect",
        (triplet_id, y, z, tuple(pages_x), px, cid, bag_cid),
    )


@ygm_handler("repro.hg.intersect")
def _h_intersect(ctx, state: dict, payload) -> None:
    """Visit at owner(y): intersect the running set, forward to owner(z)."""
    triplet_id, y, z, running, p_acc, cid, bag_cid = payload
    pages_y, py = state.get(y, ((), 0))
    running = _intersect_sorted(running, pages_y)
    part = HashPartitioner(ctx.n_ranks)
    ctx.send(
        part.owner(z),
        cid,
        "repro.hg.finish",
        (triplet_id, z, tuple(running), p_acc + py, bag_cid),
    )


@ygm_handler("repro.hg.finish")
def _h_finish(ctx, state: dict, payload) -> None:
    """Visit at owner(z): final intersection, deposit the result."""
    triplet_id, z, running, p_acc, bag_cid = payload
    pages_z, pz = state.get(z, ((), 0))
    w = len(_intersect_sorted(running, pages_z))
    ctx.local_state(bag_cid).append((triplet_id, w, p_acc + pz))


def _intersect_sorted(a, b) -> list:
    """Intersection of two sorted unique sequences (merge walk)."""
    out: list = []
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def evaluate_triplets_distributed(
    btm: BipartiteTemporalMultigraph,
    triangles: TriangleSet,
    world: YgmWorld,
) -> TripletMetrics:
    """Compute eqs. 2–4 for every surveyed triangle across *world*'s ranks.

    Examples
    --------
    >>> from repro.graph import EdgeList
    >>> from repro.tripoll import survey_triangles
    >>> from repro.ygm import YgmWorld
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [(u, p, 0) for p in ("p1", "p2") for u in ("a", "b", "c")]
    ... )
    >>> tri = survey_triangles(EdgeList([0, 0, 1], [1, 2, 2]))
    >>> with YgmWorld(2) as world:
    ...     m = evaluate_triplets_distributed(btm, tri, world)
    >>> m.w_xyz.tolist(), m.c_scores.tolist()
    ([2], [1.0])
    """
    inc = UserPageIncidence.from_btm(btm)

    pages_map = DistMap(world)
    result_bag = DistBag(world)
    # Distribute only the authors the triplets touch.
    for user in triangles.vertices():
        user = int(user)
        pages = inc.pages_of(user)
        pages_map.async_insert(user, (tuple(pages.tolist()), int(pages.shape[0])))
    world.barrier()

    cid = pages_map.container_id
    bag_cid = result_bag.container_id
    for i in range(triangles.n_triangles):
        x, y, z = int(triangles.a[i]), int(triangles.b[i]), int(triangles.c[i])
        world.async_send(
            pages_map.owner(x), cid, "repro.hg.start", (i, x, y, z, cid, bag_cid)
        )
    world.barrier()

    rows = result_bag.gather()
    pages_map.release()
    result_bag.release()

    n = triangles.n_triangles
    w = np.zeros(n, dtype=np.int64)
    p_sum = np.zeros(n, dtype=np.int64)
    for triplet_id, weight, psum in rows:
        w[triplet_id] = weight
        p_sum[triplet_id] = psum
    with np.errstate(divide="ignore", invalid="ignore"):
        c = np.where(p_sum > 0, 3.0 * w / p_sum, 0.0)
    return TripletMetrics(triangles=triangles, w_xyz=w, p_sum=p_sum, c_scores=c)
