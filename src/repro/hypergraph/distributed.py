"""Distributed Step 3 — hypergraph validation on the YGM runtime.

Paper §2.4: "the distributed containers of YGM can accelerate this
process by dividing up authors to be checked among several compute
nodes."  This engine runs the same
:data:`repro.exec.plans.VALIDATION_PLAN` as the serial evaluator, on a
:class:`~repro.exec.YgmExecutor`: the CSR user–page incidence is
broadcast once per rank as the plan context, candidate triplets are cut
into contiguous ranges (:func:`repro.exec.plans.triplet_range_shards`),
and each rank counts its ranges' hyperedge weights with the vectorized
:func:`repro.kernels.hyperedge_count` kernel.  The driver concatenates
the per-range weights in shard order and assembles a
:class:`~repro.hypergraph.triplets.TripletMetrics` aligned to the input
triangles.

Results equal :func:`repro.hypergraph.triplets.evaluate_triplets` exactly
(tests assert it on both backends).
"""

from __future__ import annotations

import numpy as np

from repro.exec.executors import YgmExecutor
from repro.exec.plans import VALIDATION_PLAN, triplet_range_shards
from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.hypergraph.incidence import UserPageIncidence
from repro.hypergraph.triplets import TripletMetrics
from repro.kernels import normalized_scores
from repro.tripoll.survey import TriangleSet
from repro.ygm.world import YgmWorld

__all__ = ["evaluate_triplets_distributed"]

# Shards per rank: >1 so uneven slice sizes still balance.
_SHARDS_PER_RANK = 4


def evaluate_triplets_distributed(
    btm: BipartiteTemporalMultigraph,
    triangles: TriangleSet,
    world: YgmWorld,
) -> TripletMetrics:
    """Compute eqs. 2–4 for every surveyed triangle across *world*'s ranks.

    Examples
    --------
    >>> from repro.graph import EdgeList
    >>> from repro.tripoll import survey_triangles
    >>> from repro.ygm import YgmWorld
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [(u, p, 0) for p in ("p1", "p2") for u in ("a", "b", "c")]
    ... )
    >>> tri = survey_triangles(EdgeList([0, 0, 1], [1, 2, 2]))
    >>> with YgmWorld(2) as world:
    ...     m = evaluate_triplets_distributed(btm, tri, world)
    >>> m.w_xyz.tolist(), m.c_scores.tolist()
    ([2], [1.0])
    """
    inc = UserPageIncidence.from_btm(btm)

    shards = triplet_range_shards(
        triangles.a, triangles.b, triangles.c, world.n_ranks * _SHARDS_PER_RANK
    )
    context = {"indptr": inc.indptr, "page_ids": inc.page_ids}
    w = YgmExecutor(world).run(VALIDATION_PLAN, shards, context)

    p = inc.page_counts()
    p_sum = (p[triangles.a] + p[triangles.b] + p[triangles.c]).astype(np.int64)
    c = normalized_scores(w, p_sum)
    return TripletMetrics(triangles=triangles, w_xyz=w, p_sum=p_sum, c_scores=c)
