"""Message aggregation — the YGM performance mechanism.

Real YGM's throughput comes from *routing buffers*: small asynchronous
messages destined for the same rank are packed into large buffers and
shipped together.  :class:`SendBuffer` reproduces that layer generically:
callers enqueue individual ``(container, handler, payload)`` sends and
the buffer delivers them as one batched message per destination rank,
unpacked remotely by a single dispatch handler.

The container-specific ``*_batch`` methods (``async_reduce_batch`` …)
remain the fastest path when all messages share one handler; the buffer
is for heterogeneous message mixes (e.g. a visitor emitting edge updates
*and* counter increments), and it records per-handler message counts so
communication volume can be profiled per algorithm.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable

from repro.ygm.handlers import handler_ref, resolve_handler, ygm_handler
from repro.ygm.world import YgmWorld

__all__ = ["SendBuffer"]


@ygm_handler("ygm.buffer.apply_batch")
def _h_apply_batch(ctx, state, batch) -> None:
    """Unpack a batch: dispatch each sub-message to its own handler.

    The batch is addressed to an arbitrary *anchor* container on the
    destination rank (batched messages may target several containers);
    each sub-message carries its own container id and is dispatched
    against that container's local state via ``ctx.local_state``.
    """
    for container_id, href, payload in batch:
        resolve_handler(href)(ctx, ctx.local_state(container_id), payload)


class SendBuffer:
    """Per-destination aggregation of asynchronous sends.

    Parameters
    ----------
    world:
        The communicator to send through.
    flush_threshold:
        Buffered messages per destination rank before an automatic flush.

    Examples
    --------
    >>> from repro.ygm import YgmWorld, DistCounter
    >>> with YgmWorld(2) as world:
    ...     counter = DistCounter(world)
    ...     with SendBuffer(world) as buf:
    ...         for i in range(100):
    ...             buf.send(
    ...                 counter.owner(i % 5), counter.container_id,
    ...                 "ygm.counter.add", (i % 5, 1),
    ...             )
    ...     world.barrier()
    ...     total = counter.total()
    >>> total
    100
    """

    def __init__(self, world: YgmWorld, flush_threshold: int = 1024) -> None:
        if flush_threshold <= 0:
            raise ValueError(
                f"flush_threshold must be positive, got {flush_threshold}"
            )
        self.world = world
        self.flush_threshold = int(flush_threshold)
        self._pending: dict[int, list[tuple[str, Any, Any]]] = {}
        self._handler_counts: Counter = Counter()
        self._batches_sent = 0
        self._messages_buffered = 0

    def send(
        self,
        target_rank: int,
        container_id: str,
        handler: Callable | str,
        payload: Any,
    ) -> None:
        """Buffer one message; flushes the destination at the threshold."""
        href = handler_ref(handler)
        bucket = self._pending.setdefault(target_rank, [])
        bucket.append((container_id, href, payload))
        self._handler_counts[href if isinstance(href, str) else repr(href)] += 1
        self._messages_buffered += 1
        if len(bucket) >= self.flush_threshold:
            self._flush_rank(target_rank)

    def flush(self) -> None:
        """Ship every buffered message (does not barrier)."""
        for rank in list(self._pending):
            self._flush_rank(rank)

    def _flush_rank(self, rank: int) -> None:
        batch = self._pending.pop(rank, None)
        if not batch:
            return
        # Anchor the batch on the first sub-message's container; the
        # dispatch handler resolves each sub-message's own container.
        anchor_cid = batch[0][0]
        self.world.async_send(rank, anchor_cid, "ygm.buffer.apply_batch", batch)
        self._batches_sent += 1

    # -- statistics -----------------------------------------------------------
    @property
    def messages_buffered(self) -> int:
        """Total messages enqueued through this buffer."""
        return self._messages_buffered

    @property
    def batches_sent(self) -> int:
        """Wire messages actually issued (the aggregation win)."""
        return self._batches_sent

    def handler_counts(self) -> dict[str, int]:
        """Per-handler message counts (communication profile)."""
        return dict(self._handler_counts)

    # -- context manager ----------------------------------------------------------
    def __enter__(self) -> "SendBuffer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.flush()
