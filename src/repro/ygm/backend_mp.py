"""Multiprocessing backend: real worker processes, queue transports.

Each rank is a forked worker process holding its own container state and
draining a :class:`multiprocessing.Queue`.  Workers send nested messages by
putting directly onto the destination rank's queue, so the communication
topology matches an MPI job (any rank to any rank, no central router).

Quiescence (barrier) uses a shared outstanding-message counter: the counter
is incremented *before* a message is enqueued and decremented only *after*
the handler finishes (by which point any nested sends it issued have
already incremented the counter).  The counter therefore reaches zero only
when no message is queued or executing — the classic credit-based
termination-detection argument.

Constraints inherited from pickling (the same constraints mpi4py imposes on
object communication): handler references must be registered names or
module-level functions, and payloads must be picklable.  Every handler in
this library satisfies both, so all distributed algorithms run unmodified
on this backend; the cross-backend equivalence tests exercise exactly that.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Any

from repro.ygm.backend import Backend, HandlerContext
from repro.ygm.handlers import handler_ref as _wire, resolve_handler

__all__ = ["MultiprocessingBackend"]

_STOP = "stop"
_CREATE = "create"
_DESTROY = "destroy"
_MSG = "msg"
_EXEC = "exec"


def _worker_main(
    rank: int,
    n_ranks: int,
    queues: list,
    outstanding,
    result_queue,
    error_queue,
    error_count,
) -> None:
    """Worker process entry point: drain this rank's queue until STOP.

    Handler exceptions do not kill the worker: they are reported to the
    driver through *error_queue* (raised at the next barrier), so a
    failing message cannot silently wedge or tear down the world.
    """
    states: dict[str, Any] = {}

    def nested_send(target_rank: int, container_id: str, href: Any, payload: Any) -> None:
        with outstanding.get_lock():
            outstanding.value += 1
        queues[target_rank].put((_MSG, container_id, _wire(href), payload))

    ctx = HandlerContext(rank, n_ranks, nested_send, states)
    my_queue = queues[rank]
    while True:
        item = my_queue.get()
        kind = item[0]
        try:
            if kind == _STOP:
                return
            if kind == _CREATE:
                _, container_id, factory_ref, args = item
                states[container_id] = resolve_handler(factory_ref)(rank, *args)
            elif kind == _DESTROY:
                states.pop(item[1], None)
            elif kind == _MSG:
                _, container_id, href, payload = item
                try:
                    resolve_handler(href)(ctx, states[container_id], payload)
                except Exception as exc:
                    # Count first, then enqueue: the driver reads the
                    # counter and *blocks* on the queue for exactly that
                    # many reports, so no error can be missed to queue
                    # visibility lag.
                    with error_count.get_lock():
                        error_count.value += 1
                    error_queue.put((rank, f"{href!r}: {exc!r}"))
            elif kind == _EXEC:
                _, fn_ref, payload = item
                try:
                    result = resolve_handler(fn_ref)(ctx, payload)
                    result_queue.put((rank, True, result))
                except Exception as exc:  # surface worker errors to driver
                    result_queue.put((rank, False, repr(exc)))
        finally:
            if kind != _STOP:
                with outstanding.get_lock():
                    outstanding.value -= 1


class MultiprocessingBackend(Backend):
    """Process-parallel backend (see module docstring)."""

    #: Seconds between quiescence polls; short because barriers are frequent.
    _POLL = 0.0005

    def __init__(self, n_ranks: int, start_method: str = "fork") -> None:
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self._ctx = mp.get_context(start_method)
        self._queues = [self._ctx.Queue() for _ in range(self.n_ranks)]
        self._outstanding = self._ctx.Value("q", 0)
        self._result_queue = self._ctx.Queue()
        self._error_queue = self._ctx.Queue()
        self._error_count = self._ctx.Value("q", 0)
        self._sent = 0
        self._alive = True
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    rank,
                    self.n_ranks,
                    self._queues,
                    self._outstanding,
                    self._result_queue,
                    self._error_queue,
                    self._error_count,
                ),
                daemon=True,
            )
            for rank in range(self.n_ranks)
        ]
        for w in self._workers:
            w.start()

    # -- container state ----------------------------------------------------
    def create_state(self, container_id: str, factory_ref: Any, args: tuple = ()) -> None:
        for rank in range(self.n_ranks):
            self._enqueue(rank, (_CREATE, container_id, _wire(factory_ref), args))
        self.run_until_quiescent()

    def destroy_state(self, container_id: str) -> None:
        if not self._alive:
            return
        for rank in range(self.n_ranks):
            self._enqueue(rank, (_DESTROY, container_id))
        self.run_until_quiescent()

    # -- messaging ----------------------------------------------------------
    def send(self, target_rank: int, container_id: str, handler_ref: Any, payload: Any) -> None:
        if not 0 <= target_rank < self.n_ranks:
            raise IndexError(f"rank {target_rank} out of range (size {self.n_ranks})")
        self._enqueue(target_rank, (_MSG, container_id, _wire(handler_ref), payload))

    def _enqueue(self, rank: int, item: tuple) -> None:
        if not self._alive:
            raise RuntimeError("backend has been shut down")
        with self._outstanding.get_lock():
            self._outstanding.value += 1
        self._queues[rank].put(item)
        self._sent += 1

    def run_until_quiescent(self) -> None:
        # Credit-based quiescence: zero outstanding ⇒ nothing queued or
        # executing anywhere (see module docstring for the argument).
        while True:
            with self._outstanding.get_lock():
                if self._outstanding.value == 0:
                    self._raise_pending_errors()
                    return
            self._check_workers()
            time.sleep(self._POLL)

    def _raise_pending_errors(self) -> None:
        """Surface handler exceptions reported by workers."""
        with self._error_count.get_lock():
            n_errors = self._error_count.value
            self._error_count.value = 0
        if n_errors == 0:
            return
        # The counter was incremented before each enqueue, so exactly
        # n_errors reports are (or will be) in the queue — block for them.
        errors = [self._error_queue.get() for _ in range(n_errors)]
        rank, detail = errors[0]
        more = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        raise RuntimeError(f"handler failed on rank {rank}: {detail}{more}")

    def _check_workers(self) -> None:
        self._raise_pending_errors()
        for rank, w in enumerate(self._workers):
            if not w.is_alive():
                raise RuntimeError(
                    f"ygm worker rank {rank} died (exitcode {w.exitcode})"
                )

    # -- synchronous execution ----------------------------------------------
    def run_on_rank(self, rank: int, fn_ref: Any, payload: Any = None) -> Any:
        results = self._exec_on([rank], fn_ref, payload)
        return results[rank]

    def run_on_all(self, fn_ref: Any, payload: Any = None) -> list[Any]:
        results = self._exec_on(list(range(self.n_ranks)), fn_ref, payload)
        return [results[r] for r in range(self.n_ranks)]

    def _exec_on(self, ranks: list[int], fn_ref: Any, payload: Any) -> dict[int, Any]:
        self.run_until_quiescent()
        for rank in ranks:
            if not 0 <= rank < self.n_ranks:
                raise IndexError(f"rank {rank} out of range (size {self.n_ranks})")
            self._enqueue(rank, (_EXEC, _wire(fn_ref), payload))
        results: dict[int, Any] = {}
        while len(results) < len(ranks):
            self._check_workers()
            rank, ok, value = self._result_queue.get()
            if not ok:
                raise RuntimeError(f"exec failed on rank {rank}: {value}")
            results[rank] = value
        return results

    @property
    def messages_delivered(self) -> int:
        return self._sent

    def shutdown(self) -> None:
        if not self._alive:
            return
        self._alive = False
        for rank in range(self.n_ranks):
            self._queues[rank].put((_STOP,))
        for w in self._workers:
            w.join(timeout=5)
            if w.is_alive():  # pragma: no cover - defensive
                w.terminate()

    def __del__(self) -> None:  # pragma: no cover - best effort cleanup
        try:
            self.shutdown()
        except Exception:
            pass
