"""Multiprocessing backend: real worker processes, queue transports.

Each rank is a forked worker process holding its own container state and
draining a :class:`multiprocessing.Queue`.  Workers send nested messages by
putting directly onto the destination rank's queue, so the communication
topology matches an MPI job (any rank to any rank, no central router).

Quiescence (barrier) uses a shared outstanding-message counter: the counter
is incremented *before* a message is enqueued and decremented only *after*
the handler finishes (by which point any nested sends it issued have
already incremented the counter).  The counter therefore reaches zero only
when no message is queued or executing — the classic credit-based
termination-detection argument.

Failure is a first-class behaviour, not an accident: every blocking wait in
the driver (quiescence poll, exec-result wait, error drain) doubles as a
liveness check, so a worker killed mid-message raises a typed
:class:`~repro.ygm.errors.WorkerDiedError` instead of spinning forever on a
counter no survivor will ever decrement.  Optional deadlines bound the
barrier and exec waits (:class:`~repro.ygm.errors.BarrierTimeoutError` /
:class:`~repro.ygm.errors.ExecTimeoutError`), and :meth:`shutdown`
escalates join → terminate → kill concurrently across ranks with queue
teardown, so even a wedged world is torn down in bounded time without
leaking children.  A :class:`~repro.ygm.faults.FaultPlan` can be injected
at construction to rehearse all of the above deterministically.

Constraints inherited from pickling (the same constraints mpi4py imposes on
object communication): handler references must be registered names or
module-level functions, and payloads must be picklable.  Every handler in
this library satisfies both, so all distributed algorithms run unmodified
on this backend; the cross-backend equivalence tests exercise exactly that.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
from typing import Any

from repro.ygm.backend import Backend, HandlerContext
from repro.ygm.errors import (
    BarrierTimeoutError,
    ExecTimeoutError,
    HandlerError,
    WorkerDiedError,
    YgmError,
)
from repro.ygm.faults import HANG_SECONDS, FaultInjector, FaultPlan, InjectedFault
from repro.ygm.handlers import handler_ref as _wire, resolve_handler

__all__ = ["MultiprocessingBackend"]

_STOP = "stop"
_CREATE = "create"
_DESTROY = "destroy"
_MSG = "msg"
_EXEC = "exec"


def _apply_fault(fault) -> None:
    """Manifest a fault spec inside a worker (see :mod:`repro.ygm.faults`)."""
    if fault.kind == "crash":
        # Die the way an OOM kill does: no cleanup, no decrement, no
        # goodbye.  The driver's liveness check must pick up the pieces.
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.kind == "hang":
        # Stall *inside* the message: outstanding stays incremented, so
        # only a barrier deadline (or shutdown escalation) resolves this.
        time.sleep(HANG_SECONDS)
    elif fault.kind == "delay":
        time.sleep(fault.seconds)
    elif fault.kind == "raise":
        raise InjectedFault(f"injected fault: {fault.describe()}")


def _worker_main(
    rank: int,
    n_ranks: int,
    queues: list,
    outstanding,
    result_queue,
    error_queue,
    error_count,
    fault_plan,
) -> None:
    """Worker process entry point: drain this rank's queue until STOP.

    Handler exceptions do not kill the worker: they are reported to the
    driver through *error_queue* (raised at the next barrier), so a
    failing message cannot silently wedge or tear down the world.
    """
    states: dict[str, Any] = {}
    injector = (
        FaultInjector(fault_plan, rank) if fault_plan is not None else None
    )

    def nested_send(target_rank: int, container_id: str, href: Any, payload: Any) -> None:
        with outstanding.get_lock():
            outstanding.value += 1
        queues[target_rank].put((_MSG, container_id, _wire(href), payload))

    ctx = HandlerContext(rank, n_ranks, nested_send, states)
    my_queue = queues[rank]
    while True:
        item = my_queue.get()
        kind = item[0]
        try:
            if kind == _STOP:
                return
            if kind == _CREATE:
                _, container_id, factory_ref, args = item
                states[container_id] = resolve_handler(factory_ref)(rank, *args)
            elif kind == _DESTROY:
                states.pop(item[1], None)
            elif kind == _MSG:
                _, container_id, href, payload = item
                try:
                    fault = injector.next_fault() if injector else None
                    if fault is not None:
                        _apply_fault(fault)
                    resolve_handler(href)(ctx, states[container_id], payload)
                except Exception as exc:
                    # Count first, then enqueue: the driver reads the
                    # counter and waits on the queue for exactly that
                    # many reports, so no error can be missed to queue
                    # visibility lag.
                    with error_count.get_lock():
                        error_count.value += 1
                    error_queue.put((rank, f"{href!r}: {exc!r}"))
            elif kind == _EXEC:
                _, fn_ref, payload = item
                try:
                    result = resolve_handler(fn_ref)(ctx, payload)
                    result_queue.put((rank, True, result))
                except Exception as exc:  # surface worker errors to driver
                    result_queue.put((rank, False, repr(exc)))
        finally:
            if kind != _STOP:
                with outstanding.get_lock():
                    outstanding.value -= 1


class MultiprocessingBackend(Backend):
    """Process-parallel backend (see module docstring).

    Parameters
    ----------
    n_ranks:
        Worker process count.
    start_method:
        ``multiprocessing`` start method (default ``"fork"``).
    barrier_deadline:
        Seconds a single :meth:`run_until_quiescent` may block before
        raising :class:`BarrierTimeoutError`.  ``None`` (default) waits
        forever — dead workers are still detected via liveness polling;
        the deadline exists to catch *hangs*, where everyone is alive but
        nobody finishes.
    exec_deadline:
        Same, for the :meth:`run_on_rank`/:meth:`run_on_all` result wait
        (:class:`ExecTimeoutError`).
    join_deadline:
        Seconds :meth:`shutdown` grants all workers *collectively* to exit
        on their own before escalating to terminate, then kill.
    fault_plan:
        Optional :class:`~repro.ygm.faults.FaultPlan` shipped to every
        worker for deterministic failure rehearsal.
    """

    #: Seconds between quiescence polls; short because barriers are frequent.
    _POLL = 0.0005
    #: Seconds between liveness re-checks while blocked on a queue.
    _QUEUE_POLL = 0.05

    def __init__(
        self,
        n_ranks: int,
        start_method: str = "fork",
        *,
        barrier_deadline: float | None = None,
        exec_deadline: float | None = None,
        join_deadline: float = 5.0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.barrier_deadline = barrier_deadline
        self.exec_deadline = exec_deadline
        self.join_deadline = float(join_deadline)
        self._ctx = mp.get_context(start_method)
        self._queues = [self._ctx.Queue() for _ in range(self.n_ranks)]
        self._outstanding = self._ctx.Value("q", 0)
        self._result_queue = self._ctx.Queue()
        self._error_queue = self._ctx.Queue()
        self._error_count = self._ctx.Value("q", 0)
        self._sent = 0
        self._alive = True
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    rank,
                    self.n_ranks,
                    self._queues,
                    self._outstanding,
                    self._result_queue,
                    self._error_queue,
                    self._error_count,
                    fault_plan if fault_plan else None,
                ),
                daemon=True,
            )
            for rank in range(self.n_ranks)
        ]
        for w in self._workers:
            w.start()

    # -- container state ----------------------------------------------------
    def create_state(self, container_id: str, factory_ref: Any, args: tuple = ()) -> None:
        for rank in range(self.n_ranks):
            self._enqueue(rank, (_CREATE, container_id, _wire(factory_ref), args))
        self.run_until_quiescent()

    def destroy_state(self, container_id: str) -> None:
        if not self._alive:
            return
        for rank in range(self.n_ranks):
            self._enqueue(rank, (_DESTROY, container_id))
        self.run_until_quiescent()

    # -- messaging ----------------------------------------------------------
    def send(self, target_rank: int, container_id: str, handler_ref: Any, payload: Any) -> None:
        if not 0 <= target_rank < self.n_ranks:
            raise IndexError(f"rank {target_rank} out of range (size {self.n_ranks})")
        self._enqueue(target_rank, (_MSG, container_id, _wire(handler_ref), payload))

    def _enqueue(self, rank: int, item: tuple) -> None:
        if not self._alive:
            raise RuntimeError("backend has been shut down")
        with self._outstanding.get_lock():
            self._outstanding.value += 1
        self._queues[rank].put(item)
        self._sent += 1

    def run_until_quiescent(self) -> None:
        # Credit-based quiescence: zero outstanding ⇒ nothing queued or
        # executing anywhere (see module docstring for the argument).
        deadline = (
            time.monotonic() + self.barrier_deadline
            if self.barrier_deadline is not None
            else None
        )
        while True:
            with self._outstanding.get_lock():
                if self._outstanding.value == 0:
                    self._raise_pending_errors()
                    return
            self._check_workers(phase="barrier")
            if deadline is not None and time.monotonic() > deadline:
                raise BarrierTimeoutError(
                    self.barrier_deadline, self._in_flight(), phase="barrier"
                )
            time.sleep(self._POLL)

    def _in_flight(self) -> int:
        with self._outstanding.get_lock():
            return int(self._outstanding.value)

    def _raise_pending_errors(self) -> None:
        """Surface handler exceptions reported by workers."""
        with self._error_count.get_lock():
            n_errors = self._error_count.value
            self._error_count.value = 0
        if n_errors == 0:
            return
        # The counter was incremented before each enqueue, so exactly
        # n_errors reports are (or will be) in the queue — wait for them,
        # but keep checking liveness: a rank that died after counting but
        # before enqueueing would otherwise wedge this drain forever.
        errors = []
        while len(errors) < n_errors:
            try:
                errors.append(self._error_queue.get(timeout=self._QUEUE_POLL))
            except queue_mod.Empty:
                self._check_liveness(phase="error-drain")
        rank, detail = errors[0]
        raise HandlerError(rank, detail, n_errors=len(errors))

    def _check_liveness(self, phase: str) -> None:
        for rank, w in enumerate(self._workers):
            if not w.is_alive():
                raise WorkerDiedError(
                    rank, w.exitcode, self._in_flight(), phase
                )

    def _check_workers(self, phase: str = "barrier") -> None:
        self._raise_pending_errors()
        self._check_liveness(phase)

    # -- synchronous execution ----------------------------------------------
    def run_on_rank(self, rank: int, fn_ref: Any, payload: Any = None) -> Any:
        results = self._exec_on([rank], fn_ref, payload)
        return results[rank]

    def run_on_all(self, fn_ref: Any, payload: Any = None) -> list[Any]:
        results = self._exec_on(list(range(self.n_ranks)), fn_ref, payload)
        return [results[r] for r in range(self.n_ranks)]

    def _exec_on(self, ranks: list[int], fn_ref: Any, payload: Any) -> dict[int, Any]:
        self.run_until_quiescent()
        for rank in ranks:
            if not 0 <= rank < self.n_ranks:
                raise IndexError(f"rank {rank} out of range (size {self.n_ranks})")
            self._enqueue(rank, (_EXEC, _wire(fn_ref), payload))
        deadline = (
            time.monotonic() + self.exec_deadline
            if self.exec_deadline is not None
            else None
        )
        results: dict[int, Any] = {}
        while len(results) < len(ranks):
            self._check_workers(phase="exec")
            if deadline is not None and time.monotonic() > deadline:
                raise ExecTimeoutError(
                    self.exec_deadline, len(ranks) - len(results)
                )
            try:
                rank, ok, value = self._result_queue.get(
                    timeout=self._QUEUE_POLL
                )
            except queue_mod.Empty:
                continue
            if not ok:
                raise YgmError(f"exec failed on rank {rank}: {value}")
            results[rank] = value
        return results

    @property
    def messages_delivered(self) -> int:
        return self._sent

    def shutdown(self) -> None:
        """Tear the world down in bounded time, never raising, never leaking.

        Escalation ladder, applied to all ranks *concurrently* (a crashed
        run must not pay ``join_deadline`` once per rank):

        1. post STOP to every queue (best effort — a full or broken queue
           is skipped, terminate will handle its owner);
        2. poll-join all workers under one shared ``join_deadline``;
        3. ``terminate()`` (SIGTERM) survivors, grant a short grace;
        4. ``kill()`` (SIGKILL) anything *still* alive — a handler stuck
           in native code ignores SIGTERM;
        5. close all queues and cancel their feeder joins so the driver
           process can exit even with undelivered buffered data.
        """
        if not self._alive:
            return
        self._alive = False
        for q in self._queues:
            try:
                q.put_nowait((_STOP,))
            except Exception:  # full/broken queue: escalation handles it
                pass
        self._join_all(self.join_deadline)
        for w in self._workers:
            if w.is_alive():
                w.terminate()
        self._join_all(1.0)
        for w in self._workers:
            if w.is_alive():  # pragma: no cover - needs SIGTERM-immune worker
                try:
                    w.kill()
                except Exception:
                    pass
        self._join_all(1.0)
        for q in [*self._queues, self._result_queue, self._error_queue]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - defensive
                pass

    def _join_all(self, deadline: float) -> None:
        """Wait up to *deadline* seconds total for every worker to exit."""
        limit = time.monotonic() + deadline
        while any(w.is_alive() for w in self._workers):
            if time.monotonic() > limit:
                return
            time.sleep(0.01)
        # Reap exit statuses now that everyone is down.
        for w in self._workers:
            w.join(timeout=0)

    def __del__(self) -> None:  # pragma: no cover - best effort cleanup
        try:
            self.shutdown()
        except Exception:
            pass
