"""``DistDisjointSet`` — distributed union-find (``ygm::container::disjoint_set``).

YGM ships a distributed disjoint-set whose ``async_union`` walks parent
pointers across ranks; it is the idiomatic way to compute connected
components of the thresholded CI graph at cluster scale.  This clone uses
the same design: each item's parent pointer lives at the item's owner
rank, ``async_union`` ships a splicing walk between the owners of the two
roots, and reads resolve roots iteratively from the driver.

Union by *id* (larger root attaches under smaller) rather than by rank
keeps the remote walk stateless — the representative of every set is its
minimum element, matching
:func:`repro.graph.components.distributed_components`' labelling, and the
equivalence is asserted in tests against union-find and networkx.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.ygm.containers.base import DistContainer
from repro.ygm.handlers import ygm_handler
from repro.ygm.partition import HashPartitioner

__all__ = ["DistDisjointSet"]


@ygm_handler("ygm.dset.make")
def _h_make(ctx, state: dict, item) -> None:
    state.setdefault(item, item)


@ygm_handler("ygm.dset.union_walk")
def _h_union_walk(ctx, state: dict, payload) -> None:
    """One hop of the distributed union walk.

    ``payload`` is ``(a, b, cid)`` with the invariant that this rank owns
    *a*.  Resolve *a* one parent step; when both sides are roots, attach
    the larger under the smaller.
    """
    a, b, cid = payload
    parent_a = state.setdefault(a, a)
    part = HashPartitioner(ctx.n_ranks)
    if parent_a != a:
        # Not a root yet: continue the walk at the parent's owner.
        # Parent pointers only ever point to smaller ids (union by min),
        # so the walk strictly descends and terminates.
        ctx.send(part.owner(parent_a), cid, "ygm.dset.union_walk", (parent_a, b, cid))
        return
    # a is a root.  Order the pair so the walk terminates: the larger
    # root must attach under the smaller, so if a < b we swap the roles
    # and keep resolving b.
    if a == b:
        return
    if b < a:
        state[a] = b
        # b might not be a root anymore; re-walk from b to compress.
        ctx.send(part.owner(b), cid, "ygm.dset.union_walk", (b, b, cid))
    else:
        # Continue resolving b's root, remembering a as the other side.
        ctx.send(part.owner(b), cid, "ygm.dset.union_walk", (b, a, cid))


@ygm_handler("ygm.dset.resolve_many")
def _h_resolve_many(ctx, payload):
    """Exec fn: one parent-pointer step for each queried item."""
    cid, items = payload
    state = ctx.local_state(cid)
    return {item: state.get(item, item) for item in items}


class DistDisjointSet(DistContainer):
    """A distributed union-find keyed by hashable items.

    Examples
    --------
    >>> from repro.ygm import YgmWorld
    >>> with YgmWorld(3) as world:
    ...     dset = DistDisjointSet(world)
    ...     dset.async_union(1, 2)
    ...     dset.async_union(2, 3)
    ...     dset.async_union(7, 8)
    ...     world.barrier()
    ...     roots = dset.find_many([1, 2, 3, 7, 8])
    >>> roots == {1: 1, 2: 1, 3: 1, 7: 7, 8: 7}
    True
    """

    _KIND = "dset"
    _STATE_FACTORY = "ygm.state.dict"

    def async_make(self, item: Hashable) -> None:
        """Ensure *item* exists as a singleton set."""
        self.world.async_send(
            self.owner(item), self.container_id, "ygm.dset.make", item
        )

    def async_union(self, a: Hashable, b: Hashable) -> None:
        """Merge the sets containing *a* and *b* (asynchronous)."""
        self.world.async_send(
            self.owner(a),
            self.container_id,
            "ygm.dset.union_walk",
            (a, b, self.container_id),
        )

    def find(self, item: Hashable):
        """Root of *item*'s set (minimum element; implies barriers)."""
        return self.find_many([item])[item]

    def find_many(self, items: Iterable[Hashable]) -> dict:
        """Roots for many items at once (iterative parent resolution)."""
        self.world.barrier()
        pending = {item: item for item in items}
        current = dict(pending)
        while True:
            per_rank: dict[int, list] = {}
            for item, cursor in current.items():
                per_rank.setdefault(self.owner(cursor), []).append(cursor)
            resolved: dict = {}
            for rank, cursors in per_rank.items():
                resolved.update(
                    self.world.run_on_rank(
                        rank,
                        "ygm.dset.resolve_many",
                        (self.container_id, cursors),
                    )
                )
            progressed = False
            for item in list(current):
                parent = resolved[current[item]]
                if parent != current[item]:
                    current[item] = parent
                    progressed = True
            if not progressed:
                return current

    def components(self) -> dict:
        """``{item: root}`` for every item ever touched (implies barriers)."""
        all_items: set = set()
        for shard in self._gather_states():
            all_items.update(shard.keys())
        return self.find_many(all_items)
