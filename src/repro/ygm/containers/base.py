"""Shared plumbing for distributed containers."""

from __future__ import annotations

from typing import Any, Hashable

from repro.ygm.handlers import ygm_handler
from repro.ygm.partition import HashPartitioner
from repro.ygm.world import YgmWorld

__all__ = ["DistContainer"]


@ygm_handler("ygm.state.dict")
def _make_dict(rank: int) -> dict:
    """Per-rank state factory: empty dict."""
    return {}


@ygm_handler("ygm.state.list")
def _make_list(rank: int) -> list:
    """Per-rank state factory: empty list."""
    return []


@ygm_handler("ygm.state.set")
def _make_set(rank: int) -> set:
    """Per-rank state factory: empty set."""
    return set()


@ygm_handler("ygm.container.collect_state")
def _collect_state(ctx, container_id: str) -> Any:
    """Exec fn returning this rank's raw local state for a container."""
    return ctx.local_state(container_id)


@ygm_handler("ygm.container.local_size")
def _local_size(ctx, container_id: str) -> int:
    """Exec fn returning the number of local entries for a container."""
    return len(ctx.local_state(container_id))


@ygm_handler("ygm.container.clear_state")
def _clear_state(ctx, container_id: str) -> None:
    """Exec fn clearing this rank's local state for a container."""
    ctx.local_state(container_id).clear()


class DistContainer:
    """Base class: id allocation, owner lookup, whole-container collectives."""

    _STATE_FACTORY = "ygm.state.dict"
    _KIND = "container"

    def __init__(self, world: YgmWorld) -> None:
        self.world = world
        self.partitioner = HashPartitioner(world.n_ranks)
        self.container_id = world.register_container(self._KIND, self._STATE_FACTORY)

    # -- ownership ------------------------------------------------------------
    def owner(self, key: Hashable) -> int:
        """Rank owning *key*."""
        return self.partitioner.owner(key)

    # -- collectives ------------------------------------------------------------
    def local_sizes(self) -> list[int]:
        """Per-rank entry counts (implies a barrier)."""
        self.world.barrier()
        return self.world.run_on_all("ygm.container.local_size", self.container_id)

    def size(self) -> int:
        """Total entries across all ranks (implies a barrier)."""
        return sum(self.local_sizes())

    def _gather_states(self) -> list[Any]:
        """All per-rank local states, in rank order (implies a barrier)."""
        self.world.barrier()
        return self.world.run_on_all("ygm.container.collect_state", self.container_id)

    def clear(self) -> None:
        """Remove every entry on every rank (implies a barrier)."""
        self.world.barrier()
        self.world.run_on_all("ygm.container.clear_state", self.container_id)

    def release(self) -> None:
        """Free the container's distributed state."""
        self.world.release_container(self.container_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.container_id!r})"
