"""``DistSet`` — a hash-partitioned membership set.

Mirrors ``ygm::container::set``.  The pipeline's iterative-refinement loop
keeps the set of ruled-out authors in a ``DistSet`` so reprojection can
skip them.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.ygm.containers.base import DistContainer
from repro.ygm.handlers import ygm_handler

__all__ = ["DistSet"]


@ygm_handler("ygm.set.insert")
def _h_insert(ctx, state: set, item) -> None:
    state.add(item)


@ygm_handler("ygm.set.insert_batch")
def _h_insert_batch(ctx, state: set, items) -> None:
    state.update(items)


@ygm_handler("ygm.set.erase")
def _h_erase(ctx, state: set, item) -> None:
    state.discard(item)


@ygm_handler("ygm.set.contains_many")
def _h_contains_many(ctx, payload):
    container_id, items = payload
    state = ctx.local_state(container_id)
    return [item for item in items if item in state]


class DistSet(DistContainer):
    """A distributed set with asynchronous inserts and collective queries.

    Examples
    --------
    >>> from repro.ygm import YgmWorld, DistSet
    >>> with YgmWorld(2) as world:
    ...     s = DistSet(world)
    ...     s.async_insert_batch(["a", "b", "a"])
    ...     world.barrier()
    ...     n, has_a = s.size(), s.contains("a")
    >>> (n, has_a)
    (2, True)
    """

    _KIND = "set"
    _STATE_FACTORY = "ygm.state.set"

    def async_insert(self, item: Hashable) -> None:
        """Add *item* at its owner rank."""
        self.world.async_send(
            self.owner(item), self.container_id, "ygm.set.insert", item
        )

    def async_insert_batch(self, items: Iterable[Hashable]) -> None:
        """Add many items, one batched message per destination rank."""
        per_rank: dict[int, list[Hashable]] = {}
        for item in items:
            per_rank.setdefault(self.owner(item), []).append(item)
        for rank, batch in per_rank.items():
            self.world.async_send(
                rank, self.container_id, "ygm.set.insert_batch", batch
            )

    def async_erase(self, item: Hashable) -> None:
        """Remove *item* (no-op when absent)."""
        self.world.async_send(
            self.owner(item), self.container_id, "ygm.set.erase", item
        )

    def contains(self, item: Hashable) -> bool:
        """Synchronous membership test (implies a barrier)."""
        self.world.barrier()
        found = self.world.run_on_rank(
            self.owner(item), "ygm.set.contains_many", (self.container_id, [item])
        )
        return bool(found)

    def contains_many(self, items: Iterable[Hashable]) -> set:
        """Subset of *items* present in the set (implies a barrier)."""
        self.world.barrier()
        per_rank: dict[int, list[Hashable]] = {}
        for item in items:
            per_rank.setdefault(self.owner(item), []).append(item)
        out: set = set()
        for rank, batch in per_rank.items():
            out.update(
                self.world.run_on_rank(
                    rank, "ygm.set.contains_many", (self.container_id, batch)
                )
            )
        return out

    def to_set(self) -> set:
        """Gather the whole set to the driver (implies a barrier)."""
        merged: set = set()
        for shard in self._gather_states():
            merged.update(shard)
        return merged
