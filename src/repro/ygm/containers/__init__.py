"""YGM-style distributed containers.

Each container partitions its entries across the world's ranks with a
deterministic owner function and exposes the asynchronous operations the
paper's algorithms are written against:

- :class:`~repro.ygm.containers.bag.DistBag` — unordered items, round-robin
  placement, ``for_all`` visitation (YGM ``ygm::container::bag``).
- :class:`~repro.ygm.containers.map.DistMap` — key/value store with
  ``async_insert`` / ``async_reduce`` / ``async_visit`` (``ygm::container::map``).
- :class:`~repro.ygm.containers.set.DistSet` — membership set
  (``ygm::container::set``).
- :class:`~repro.ygm.containers.counter.DistCounter` — counting map with
  ``async_add`` and distributed top-k (``ygm::container::counting_set``).
- :class:`~repro.ygm.containers.array.DistArray` — dense block-partitioned
  numeric array (``ygm::container::array``).
"""

from repro.ygm.containers.bag import DistBag
from repro.ygm.containers.map import DistMap
from repro.ygm.containers.set import DistSet
from repro.ygm.containers.counter import DistCounter
from repro.ygm.containers.array import DistArray
from repro.ygm.containers.disjoint_set import DistDisjointSet

__all__ = ["DistBag", "DistMap", "DistSet", "DistCounter", "DistArray", "DistDisjointSet"]
