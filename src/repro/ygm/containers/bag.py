"""``DistBag`` — an unordered distributed multiset of items.

Mirrors ``ygm::container::bag``: items carry no key, so placement is
round-robin from the driver (or local when inserted from a handler).  The
distributed projection stores page comment-lists in a bag so each rank
projects its local share of pages independently.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable

from repro.ygm.containers.base import DistContainer
from repro.ygm.handlers import handler_ref, ygm_handler
from repro.ygm.world import YgmWorld

__all__ = ["DistBag"]


@ygm_handler("ygm.bag.insert")
def _h_insert(ctx, state: list, item) -> None:
    state.append(item)


@ygm_handler("ygm.bag.insert_batch")
def _h_insert_batch(ctx, state: list, items) -> None:
    state.extend(items)


@ygm_handler("ygm.bag.for_all_local")
def _h_for_all_local(ctx, payload) -> int:
    from repro.ygm.handlers import resolve_handler

    container_id, fn_ref, extra = payload
    state = ctx.local_state(container_id)
    fn = resolve_handler(fn_ref)
    for item in list(state):
        fn(ctx, item, *extra)
    return len(state)


@ygm_handler("ygm.bag.map_local")
def _h_map_local(ctx, payload) -> list:
    from repro.ygm.handlers import resolve_handler

    container_id, fn_ref, extra = payload
    state = ctx.local_state(container_id)
    fn = resolve_handler(fn_ref)
    return [fn(ctx, item, *extra) for item in state]


class DistBag(DistContainer):
    """An unordered, round-robin partitioned item collection.

    Examples
    --------
    >>> from repro.ygm import YgmWorld, DistBag
    >>> with YgmWorld(3) as world:
    ...     bag = DistBag(world)
    ...     bag.async_insert_batch(range(10))
    ...     world.barrier()
    ...     n = bag.size()
    >>> n
    10
    """

    _KIND = "bag"
    _STATE_FACTORY = "ygm.state.list"

    def __init__(self, world: YgmWorld) -> None:
        super().__init__(world)
        self._next_rank = itertools.cycle(range(world.n_ranks))

    def async_insert(self, item: Any) -> None:
        """Add one item (round-robin placement)."""
        self.world.async_send(
            next(self._next_rank), self.container_id, "ygm.bag.insert", item
        )

    def async_insert_batch(self, items: Iterable[Any]) -> None:
        """Add many items, one batched message per rank."""
        per_rank: list[list[Any]] = [[] for _ in range(self.world.n_ranks)]
        for item in items:
            per_rank[next(self._next_rank)].append(item)
        for rank, batch in enumerate(per_rank):
            if batch:
                self.world.async_send(
                    rank, self.container_id, "ygm.bag.insert_batch", batch
                )

    def for_all(self, fn: Callable | str, *extra: Any) -> None:
        """Run ``fn(ctx, item, *extra)`` for every item, rank-locally.

        *fn* may issue nested sends; the closing barrier delivers them.
        """
        self.world.barrier()
        self.world.run_on_all(
            "ygm.bag.for_all_local", (self.container_id, handler_ref(fn), extra)
        )
        self.world.barrier()

    def map_gather(self, fn: Callable | str, *extra: Any) -> list[Any]:
        """Apply ``fn(ctx, item, *extra)`` to every item; gather the results."""
        self.world.barrier()
        per_rank = self.world.run_on_all(
            "ygm.bag.map_local", (self.container_id, handler_ref(fn), extra)
        )
        return [value for shard in per_rank for value in shard]

    def gather(self) -> list[Any]:
        """All items, concatenated in rank order (implies a barrier)."""
        return [item for shard in self._gather_states() for item in shard]
