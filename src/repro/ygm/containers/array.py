"""``DistArray`` — a dense, block-partitioned numeric array.

Mirrors ``ygm::container::array``: a fixed-length float64/int64 vector
split into contiguous per-rank blocks, with asynchronous element updates
and a collective gather.  Degree vectors and per-author page counts live
here in the distributed pipeline.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.ygm.containers.base import DistContainer
from repro.ygm.handlers import ygm_handler
from repro.ygm.partition import BlockPartitioner
from repro.ygm.world import YgmWorld

__all__ = ["DistArray"]


@ygm_handler("ygm.array.state")
def _make_block(rank: int, n_items: int, n_ranks: int, dtype_str: str) -> dict:
    part = BlockPartitioner(n_ranks, n_items)
    start, stop = part.local_range(rank)
    return {
        "start": start,
        "data": np.zeros(stop - start, dtype=np.dtype(dtype_str)),
    }


@ygm_handler("ygm.array.set")
def _h_set(ctx, state: dict, payload) -> None:
    index, value = payload
    state["data"][index - state["start"]] = value


@ygm_handler("ygm.array.add")
def _h_add(ctx, state: dict, payload) -> None:
    index, value = payload
    state["data"][index - state["start"]] += value


@ygm_handler("ygm.array.add_batch")
def _h_add_batch(ctx, state: dict, payload) -> None:
    indices, values = payload
    # np.add.at handles repeated indices within one batch correctly.
    np.add.at(
        state["data"], np.asarray(indices, dtype=np.int64) - state["start"], values
    )


@ygm_handler("ygm.array.collect")
def _h_collect(ctx, container_id: str):
    state = ctx.local_state(container_id)
    return state["start"], state["data"]


class DistArray(DistContainer):
    """A block-partitioned distributed vector.

    Examples
    --------
    >>> from repro.ygm import YgmWorld, DistArray
    >>> with YgmWorld(2) as world:
    ...     arr = DistArray(world, 6, dtype="int64")
    ...     arr.async_add(5, 7)
    ...     arr.async_add(5, 1)
    ...     world.barrier()
    ...     full = arr.gather()
    >>> full.tolist()
    [0, 0, 0, 0, 0, 8]
    """

    _KIND = "array"

    def __init__(self, world: YgmWorld, n_items: int, dtype: str = "float64") -> None:
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        self.world = world
        self.n_items = int(n_items)
        self.dtype = np.dtype(dtype)
        self.partitioner = BlockPartitioner(world.n_ranks, self.n_items)
        self.container_id = world.register_container(
            self._KIND, "ygm.array.state", (self.n_items, world.n_ranks, str(self.dtype))
        )

    def owner(self, index: int) -> int:
        """Rank owning *index*."""
        return self.partitioner.owner(index)

    def async_set(self, index: int, value) -> None:
        """Set one element at its owner rank."""
        self.world.async_send(
            self.owner(index), self.container_id, "ygm.array.set", (index, value)
        )

    def async_add(self, index: int, value) -> None:
        """Accumulate into one element at its owner rank."""
        self.world.async_send(
            self.owner(index), self.container_id, "ygm.array.add", (index, value)
        )

    def async_add_batch(self, indices: Iterable[int], values: Iterable) -> None:
        """Batched accumulate: one message per destination rank."""
        idx = np.asarray(list(indices), dtype=np.int64)
        val = np.asarray(list(values))
        if idx.shape[0] != val.shape[0]:
            raise ValueError("indices and values must have equal length")
        if idx.size == 0:
            return
        owners = self.partitioner.owner_array(idx)
        for rank in np.unique(owners):
            mask = owners == rank
            self.world.async_send(
                int(rank),
                self.container_id,
                "ygm.array.add_batch",
                (idx[mask], val[mask]),
            )

    def gather(self) -> np.ndarray:
        """Assemble the full vector on the driver (implies a barrier)."""
        self.world.barrier()
        parts = self.world.run_on_all("ygm.array.collect", self.container_id)
        out = np.zeros(self.n_items, dtype=self.dtype)
        for start, data in parts:
            out[start : start + data.shape[0]] = data
        return out

    def size(self) -> int:
        """Logical length of the vector."""
        return self.n_items
