"""``DistMap`` — the workhorse key/value container.

Mirrors ``ygm::container::map``: entries are hash-partitioned by key, and
mutation happens through asynchronous messages executed at the owner rank.
The paper's distributed projection accumulates common-interaction edge
weights into a ``DistMap`` keyed by author pairs, and its distributed
triangle survey uses ``async_visit`` to ship wedge checks to the rank
owning the adjacency of the closing vertex.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

from repro.ygm.containers.base import DistContainer
from repro.ygm.handlers import handler_ref, resolve_handler, ygm_handler

__all__ = ["DistMap"]


@ygm_handler("ygm.map.insert")
def _h_insert(ctx, state: dict, payload) -> None:
    key, value = payload
    state[key] = value


@ygm_handler("ygm.map.insert_batch")
def _h_insert_batch(ctx, state: dict, payload) -> None:
    state.update(payload)


@ygm_handler("ygm.map.insert_if_missing")
def _h_insert_if_missing(ctx, state: dict, payload) -> None:
    key, value = payload
    state.setdefault(key, value)


@ygm_handler("ygm.map.erase")
def _h_erase(ctx, state: dict, key) -> None:
    state.pop(key, None)


@ygm_handler("ygm.map.reduce")
def _h_reduce(ctx, state: dict, payload) -> None:
    key, value, op_ref = payload
    op = resolve_handler(op_ref)
    if key in state:
        state[key] = op(state[key], value)
    else:
        state[key] = value


@ygm_handler("ygm.map.reduce_batch")
def _h_reduce_batch(ctx, state: dict, payload) -> None:
    items, op_ref = payload
    op = resolve_handler(op_ref)
    for key, value in items:
        if key in state:
            state[key] = op(state[key], value)
        else:
            state[key] = value


@ygm_handler("ygm.map.visit")
def _h_visit(ctx, state: dict, payload) -> None:
    key, visitor_ref, extra = payload
    resolve_handler(visitor_ref)(ctx, state, key, state.get(key), *extra)


@ygm_handler("ygm.map.visit_or_create")
def _h_visit_or_create(ctx, state: dict, payload) -> None:
    key, default, visitor_ref, extra = payload
    if key not in state:
        state[key] = default
    resolve_handler(visitor_ref)(ctx, state, key, state[key], *extra)


@ygm_handler("ygm.map.lookup_many")
def _h_lookup_many(ctx, payload):
    container_id, keys = payload
    state = ctx.local_state(container_id)
    return {k: state[k] for k in keys if k in state}


@ygm_handler("ygm.map.for_all_local")
def _h_for_all_local(ctx, payload) -> int:
    container_id, fn_ref, extra = payload
    state = ctx.local_state(container_id)
    fn = resolve_handler(fn_ref)
    for key, value in list(state.items()):
        fn(ctx, state, key, value, *extra)
    return len(state)


class DistMap(DistContainer):
    """A hash-partitioned distributed dictionary.

    All ``async_*`` methods enqueue work; results are observable only after
    :meth:`repro.ygm.world.YgmWorld.barrier` (or any collective, which
    barriers internally).

    Examples
    --------
    >>> from repro.ygm import YgmWorld, DistMap
    >>> with YgmWorld(2) as world:
    ...     m = DistMap(world)
    ...     m.async_insert("x", 1)
    ...     m.async_reduce("x", 5, "ygm.op.add")
    ...     world.barrier()
    ...     d = m.to_dict()
    >>> d
    {'x': 6}
    """

    _KIND = "map"
    _STATE_FACTORY = "ygm.state.dict"

    # -- asynchronous mutation -------------------------------------------------
    def async_insert(self, key: Hashable, value: Any) -> None:
        """Set ``map[key] = value`` at the owner rank."""
        self.world.async_send(
            self.owner(key), self.container_id, "ygm.map.insert", (key, value)
        )

    def async_insert_batch(self, items: Iterable[tuple[Hashable, Any]]) -> None:
        """Batched :meth:`async_insert` — one message per destination rank.

        Later entries for the same key win, matching a sequential series
        of inserts.
        """
        per_rank: dict[int, dict[Hashable, Any]] = {}
        owner = self.owner
        for key, value in items:
            per_rank.setdefault(owner(key), {})[key] = value
        for rank, batch in per_rank.items():
            self.world.async_send(
                rank, self.container_id, "ygm.map.insert_batch", batch
            )

    def async_insert_if_missing(self, key: Hashable, value: Any) -> None:
        """Set ``map[key] = value`` only if *key* is absent."""
        self.world.async_send(
            self.owner(key),
            self.container_id,
            "ygm.map.insert_if_missing",
            (key, value),
        )

    def async_erase(self, key: Hashable) -> None:
        """Remove *key* (no-op when absent)."""
        self.world.async_send(
            self.owner(key), self.container_id, "ygm.map.erase", key
        )

    def async_reduce(self, key: Hashable, value: Any, op: Callable | str) -> None:
        """Combine *value* into ``map[key]`` with binary *op* (insert if new)."""
        self.world.async_send(
            self.owner(key),
            self.container_id,
            "ygm.map.reduce",
            (key, value, handler_ref(op)),
        )

    def async_reduce_batch(
        self, items: Iterable[tuple[Hashable, Any]], op: Callable | str
    ) -> None:
        """Batched :meth:`async_reduce` — one message per destination rank.

        Message batching is the single most important performance lever in
        asynchronous runtimes (YGM does the same internally); the projection
        engine funnels millions of pair increments through this path.
        """
        op_ref = handler_ref(op)
        per_rank: dict[int, list[tuple[Hashable, Any]]] = {}
        owner = self.owner
        for key, value in items:
            per_rank.setdefault(owner(key), []).append((key, value))
        for rank, batch in per_rank.items():
            self.world.async_send(
                rank, self.container_id, "ygm.map.reduce_batch", (batch, op_ref)
            )

    def async_visit(
        self, key: Hashable, visitor: Callable | str, *extra: Any
    ) -> None:
        """Run ``visitor(ctx, state, key, value, *extra)`` at the owner rank.

        ``value`` is ``None`` when *key* is absent.  The visitor may mutate
        ``state`` and may issue nested sends through ``ctx`` — this is the
        YGM pattern the distributed triangle survey is built from.
        """
        self.world.async_send(
            self.owner(key),
            self.container_id,
            "ygm.map.visit",
            (key, handler_ref(visitor), extra),
        )

    def async_visit_or_create(
        self, key: Hashable, default: Any, visitor: Callable | str, *extra: Any
    ) -> None:
        """Like :meth:`async_visit` but inserts *default* first when absent."""
        self.world.async_send(
            self.owner(key),
            self.container_id,
            "ygm.map.visit_or_create",
            (key, default, handler_ref(visitor), extra),
        )

    # -- collective reads --------------------------------------------------------
    def lookup(self, key: Hashable, default: Any = None) -> Any:
        """Synchronously read one key (implies a barrier)."""
        self.world.barrier()
        found = self.world.run_on_rank(
            self.owner(key), "ygm.map.lookup_many", (self.container_id, [key])
        )
        return found.get(key, default)

    def lookup_many(self, keys: Iterable[Hashable]) -> dict:
        """Synchronously read many keys (implies a barrier)."""
        self.world.barrier()
        per_rank: dict[int, list[Hashable]] = {}
        for key in keys:
            per_rank.setdefault(self.owner(key), []).append(key)
        out: dict = {}
        for rank, rank_keys in per_rank.items():
            out.update(
                self.world.run_on_rank(
                    rank, "ygm.map.lookup_many", (self.container_id, rank_keys)
                )
            )
        return out

    def for_all(self, fn: Callable | str, *extra: Any) -> None:
        """Run ``fn(ctx, state, key, value, *extra)`` for every entry.

        Executes rank-locally on each rank's shard; *fn* may issue nested
        sends, delivered by the closing barrier.
        """
        self.world.barrier()
        self.world.run_on_all(
            "ygm.map.for_all_local", (self.container_id, handler_ref(fn), extra)
        )
        self.world.barrier()

    def to_dict(self) -> dict:
        """Gather the whole map to the driver (implies a barrier)."""
        merged: dict = {}
        for shard in self._gather_states():
            merged.update(shard)
        return merged
