"""``DistCounter`` — a counting map with distributed top-k.

Mirrors ``ygm::container::counting_set``.  Used for degree counting and
for the `P'` page-count ledger in the distributed projection.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable

from repro.ygm.containers.base import DistContainer
from repro.ygm.handlers import ygm_handler

__all__ = ["DistCounter"]


@ygm_handler("ygm.counter.add")
def _h_add(ctx, state: dict, payload) -> None:
    key, amount = payload
    state[key] = state.get(key, 0) + amount


@ygm_handler("ygm.counter.add_batch")
def _h_add_batch(ctx, state: dict, items) -> None:
    get = state.get
    for key, amount in items:
        state[key] = get(key, 0) + amount


@ygm_handler("ygm.counter.local_topk")
def _h_local_topk(ctx, payload):
    container_id, k = payload
    state = ctx.local_state(container_id)
    # Global order is (count desc, repr asc); the local candidate set must
    # use the same order or a tie at the global boundary could be dropped.
    return heapq.nsmallest(
        k, state.items(), key=lambda kv: (-kv[1], repr(kv[0]))
    )


@ygm_handler("ygm.counter.local_total")
def _h_local_total(ctx, container_id) -> int:
    return sum(ctx.local_state(container_id).values())


class DistCounter(DistContainer):
    """A distributed counting map.

    Examples
    --------
    >>> from repro.ygm import YgmWorld, DistCounter
    >>> with YgmWorld(2) as world:
    ...     c = DistCounter(world)
    ...     c.async_add_batch([("a", 1), ("b", 2), ("a", 3)])
    ...     world.barrier()
    ...     top = c.top_k(1)
    >>> top
    [('a', 4)]
    """

    _KIND = "counter"
    _STATE_FACTORY = "ygm.state.dict"

    def async_add(self, key: Hashable, amount: int = 1) -> None:
        """Add *amount* to ``counter[key]`` at the owner rank."""
        self.world.async_send(
            self.owner(key), self.container_id, "ygm.counter.add", (key, amount)
        )

    def async_add_batch(self, items: Iterable[tuple[Hashable, int]]) -> None:
        """Batched :meth:`async_add`, one message per destination rank."""
        per_rank: dict[int, list[tuple[Hashable, int]]] = {}
        for key, amount in items:
            per_rank.setdefault(self.owner(key), []).append((key, amount))
        for rank, batch in per_rank.items():
            self.world.async_send(
                rank, self.container_id, "ygm.counter.add_batch", batch
            )

    def count_of(self, key: Hashable) -> int:
        """Synchronously read one count (0 when absent; implies a barrier)."""
        self.world.barrier()
        shard = self.world.run_on_rank(
            self.owner(key), "ygm.container.collect_state", self.container_id
        )
        return shard.get(key, 0)

    def total(self) -> int:
        """Sum of all counts (implies a barrier)."""
        self.world.barrier()
        return sum(
            self.world.run_on_all("ygm.counter.local_total", self.container_id)
        )

    def top_k(self, k: int) -> list[tuple[Hashable, int]]:
        """The *k* highest-count entries, globally (implies a barrier).

        Each rank contributes its local top-k; the driver merges — the
        standard two-level top-k reduction, exact because per-key counts
        are complete at their owner rank.
        """
        self.world.barrier()
        candidates = self.world.run_on_all(
            "ygm.counter.local_topk", (self.container_id, k)
        )
        merged = [kv for shard in candidates for kv in shard]
        merged.sort(key=lambda kv: (-kv[1], repr(kv[0])))
        return merged[:k]

    def to_dict(self) -> dict:
        """Gather all counts to the driver (implies a barrier)."""
        merged: dict = {}
        for shard in self._gather_states():
            merged.update(shard)
        return merged
