"""A YGM-style asynchronous message-passing runtime with distributed containers.

The paper implements every stage of its framework on top of YGM [Priest et
al. 2019], an MPI-based C++ library whose programming model is:

* data structures are *partitioned* across ranks by an owner function;
* computation is expressed as *asynchronous visits* — closures shipped to
  the rank that owns a datum, which may themselves issue further visits;
* progress is punctuated by *barriers* that deliver all in-flight messages
  until the system is quiescent.

This package reproduces that model in Python so the paper's distributed
algorithms (projection, triangle surveying, hypergraph validation) can be
expressed exactly as they are in the original system:

- :class:`repro.ygm.world.YgmWorld` — the communicator facade: ranks,
  barriers, collectives, container registry.
- :mod:`repro.ygm.backend` — the deterministic in-process ``serial``
  backend (rank mailboxes drained round-robin) used by default and in tests.
- :mod:`repro.ygm.backend_mp` — a ``multiprocessing`` backend with real
  worker processes, queue transports, and counter-based quiescence
  detection, demonstrating that the same programs run unmodified on a
  process-parallel substrate (mirroring the mpi4py idioms from the HPC
  guides: named, picklable handlers instead of closures).
- :mod:`repro.ygm.containers` — ``DistBag``, ``DistMap``, ``DistSet``,
  ``DistCounter``, ``DistArray``.

Scale note: the original runs on LLNL clusters; here the value of the
runtime is *algorithmic fidelity* — owner-hash partitioning and
visit-until-quiescent semantics — not wall-clock speedup (see DESIGN.md §2).
"""

from repro.ygm.world import YgmWorld, ygm_world
from repro.ygm.handlers import ygm_handler, resolve_handler
from repro.ygm.errors import (
    BarrierTimeoutError,
    ExecTimeoutError,
    HandlerError,
    WorkerDiedError,
    YgmError,
)
from repro.ygm.faults import FaultPlan, FaultSpec, InjectedFault
from repro.ygm import reductions  # noqa: F401 — registers the named ygm.op.* handlers
from repro.ygm.partition import HashPartitioner, BlockPartitioner
from repro.ygm.buffer import SendBuffer
from repro.ygm.containers import (
    DistBag,
    DistMap,
    DistSet,
    DistCounter,
    DistArray,
    DistDisjointSet,
)

__all__ = [
    "YgmWorld",
    "ygm_world",
    "ygm_handler",
    "resolve_handler",
    "YgmError",
    "HandlerError",
    "WorkerDiedError",
    "BarrierTimeoutError",
    "ExecTimeoutError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "HashPartitioner",
    "BlockPartitioner",
    "SendBuffer",
    "DistBag",
    "DistMap",
    "DistSet",
    "DistCounter",
    "DistArray",
    "DistDisjointSet",
]
