"""The YGM world: ranks, barriers, collectives, and the container registry.

:class:`YgmWorld` is the single object user code holds.  It is a *driver*
facade: the program issues asynchronous operations against distributed
containers and punctuates them with :meth:`YgmWorld.barrier`, exactly
mirroring how a YGM C++ program alternates ``async_*`` calls with
``comm.barrier()``.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.ygm.backend import Backend, SerialBackend
from repro.ygm.handlers import ygm_handler

__all__ = ["YgmWorld", "ygm_world"]

_world_counter = itertools.count()


@ygm_handler("ygm.world.eval")
def _eval_fn(ctx, payload):
    """Exec shim: run ``fn(ctx, arg)`` where payload is ``(fn_ref, arg)``."""
    from repro.ygm.handlers import resolve_handler

    fn_ref, arg = payload
    return resolve_handler(fn_ref)(ctx, arg)


class YgmWorld:
    """A communicator over ``n_ranks`` ranks with a pluggable backend.

    Parameters
    ----------
    n_ranks:
        World size.  On the serial backend this is purely logical; on the
        multiprocessing backend it is the number of worker processes.
    backend:
        ``"serial"`` (default; deterministic, in-process) or ``"mp"``
        (forked worker processes).  An already constructed
        :class:`~repro.ygm.backend.Backend` may also be passed.
    fault_plan:
        Optional :class:`~repro.ygm.faults.FaultPlan` for deterministic
        failure injection (both string backends accept it).
    barrier_deadline / exec_deadline:
        Liveness deadlines in seconds, forwarded to the ``"mp"`` backend
        (ignored by ``"serial"``, which cannot hang).  See
        :mod:`repro.ygm.errors` for the exceptions they arm.

    Examples
    --------
    >>> from repro.ygm import YgmWorld, DistCounter
    >>> world = YgmWorld(n_ranks=4)
    >>> counter = DistCounter(world)
    >>> for word in ["a", "b", "a"]:
    ...     counter.async_add(word, 1)
    >>> world.barrier()
    >>> counter.to_dict()["a"]
    2
    >>> world.shutdown()
    """

    def __init__(
        self,
        n_ranks: int = 4,
        backend: str | Backend = "serial",
        *,
        fault_plan=None,
        barrier_deadline: float | None = None,
        exec_deadline: float | None = None,
    ) -> None:
        if isinstance(backend, Backend):
            self._backend = backend
        elif backend == "serial":
            self._backend = SerialBackend(n_ranks, fault_plan=fault_plan)
        elif backend == "mp":
            from repro.ygm.backend_mp import MultiprocessingBackend

            self._backend = MultiprocessingBackend(
                n_ranks,
                fault_plan=fault_plan,
                barrier_deadline=barrier_deadline,
                exec_deadline=exec_deadline,
            )
        else:
            raise ValueError(
                f"unknown backend {backend!r}; expected 'serial' or 'mp'"
            )
        self._container_ids: set[str] = set()
        self._id_counter = itertools.count()
        self._world_id = next(_world_counter)

    # -- basic properties ----------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """World size."""
        return self._backend.n_ranks

    @property
    def backend(self) -> Backend:
        """The underlying backend (for diagnostics and advanced use)."""
        return self._backend

    @property
    def messages_delivered(self) -> int:
        """Total messages the backend has carried (diagnostics)."""
        return self._backend.messages_delivered

    # -- container registry ---------------------------------------------------
    def register_container(
        self, kind: str, factory_ref: Any, args: tuple = ()
    ) -> str:
        """Allocate a container id and create its per-rank state everywhere."""
        container_id = f"w{self._world_id}.{kind}.{next(self._id_counter)}"
        self._backend.create_state(container_id, factory_ref, args)
        self._container_ids.add(container_id)
        return container_id

    def release_container(self, container_id: str) -> None:
        """Destroy a container's state on every rank."""
        if container_id in self._container_ids:
            self._backend.destroy_state(container_id)
            self._container_ids.discard(container_id)

    # -- messaging -------------------------------------------------------------
    def async_send(
        self, target_rank: int, container_id: str, handler_ref: Any, payload: Any
    ) -> None:
        """Queue a message for *target_rank* (driver-side entry point)."""
        self._backend.send(target_rank, container_id, handler_ref, payload)

    def barrier(self) -> None:
        """Deliver all in-flight messages (including nested sends)."""
        self._backend.run_until_quiescent()

    # -- collectives -------------------------------------------------------------
    def run_on_rank(self, rank: int, fn_ref: Any, arg: Any = None) -> Any:
        """Synchronously run ``fn(ctx, arg)`` on one rank and return its result."""
        return self._backend.run_on_rank(rank, "ygm.world.eval", (fn_ref, arg))

    def run_on_all(self, fn_ref: Any, arg: Any = None) -> list[Any]:
        """Synchronously run ``fn(ctx, arg)`` on every rank; list of results."""
        return self._backend.run_on_all("ygm.world.eval", (fn_ref, arg))

    def all_reduce(self, fn_ref: Any, op: Callable[[Any, Any], Any], arg: Any = None) -> Any:
        """Reduce per-rank values ``fn(ctx, arg)`` with binary *op*."""
        values = self.run_on_all(fn_ref, arg)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    # -- lifecycle ----------------------------------------------------------------
    def shutdown(self) -> None:
        """Release all containers and stop backend workers (idempotent).

        Teardown is best-effort: on a world whose backend already failed
        (dead worker, timed-out barrier), container release would only
        re-raise the original fault, so it is skipped and the backend is
        shut down regardless — a failed run must never leak processes.
        """
        try:
            for container_id in list(self._container_ids):
                self.release_container(container_id)
        except Exception:
            self._container_ids.clear()
        finally:
            self._backend.shutdown()

    def __enter__(self) -> "YgmWorld":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"YgmWorld(n_ranks={self.n_ranks}, "
            f"backend={type(self._backend).__name__})"
        )


@contextmanager
def ygm_world(
    n_ranks: int = 4, backend: str | Backend = "serial", **kwargs: Any
) -> Iterator[YgmWorld]:
    """Context manager constructing and tearing down a :class:`YgmWorld`."""
    world = YgmWorld(n_ranks=n_ranks, backend=backend, **kwargs)
    try:
        yield world
    finally:
        world.shutdown()
