"""Named binary reduction operators.

``DistMap.async_reduce`` and the world collectives ship the *name* of the
operator rather than a closure so the multiprocessing backend can resolve
it locally (the handler-registry discipline of :mod:`repro.ygm.handlers`).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.ygm.handlers import ygm_handler

__all__ = ["op_add", "op_max", "op_min", "op_or", "op_concat"]


@ygm_handler("ygm.op.add")
def op_add(a: Any, b: Any) -> Any:
    """Sum reduction."""
    return a + b


@ygm_handler("ygm.op.max")
def op_max(a: Any, b: Any) -> Any:
    """Maximum reduction."""
    return a if a >= b else b


@ygm_handler("ygm.op.min")
def op_min(a: Any, b: Any) -> Any:
    """Minimum reduction."""
    return a if a <= b else b


@ygm_handler("ygm.op.or")
def op_or(a: Any, b: Any) -> Any:
    """Logical/bitwise OR reduction."""
    return a | b


@ygm_handler("ygm.op.concat")
def op_concat(a: list, b: list) -> list:
    """List concatenation reduction."""
    return list(a) + list(b)


def resolve_op(op: Callable | str) -> Callable:
    """Resolve an operator given either a callable or a registered name."""
    from repro.ygm.handlers import resolve_handler

    return resolve_handler(op)
