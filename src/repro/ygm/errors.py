"""Typed failure taxonomy of the YGM runtime.

Every way a distributed run can die maps to exactly one exception class, so
drivers can write policy (retry, resume, abort) against *types* instead of
string-matching messages (see ``docs/fault_model.md`` for the full matrix):

- :class:`HandlerError` — a message handler raised; the fabric survived and
  the error is reported at the next barrier.  Retryable at stage level.
- :class:`WorkerDiedError` — a worker process exited (crash, OOM kill,
  SIGKILL) while messages were in flight.  The backend is dead; retry needs
  a *fresh* backend.
- :class:`BarrierTimeoutError` — a quiescence wait exceeded its deadline
  with all workers still alive (livelock, hung handler, starved queue).
- :class:`ExecTimeoutError` — the synchronous-execution variant of the
  above (``run_on_rank`` / ``run_on_all`` result wait).

All classes subclass :class:`YgmError` (itself a ``RuntimeError``, so
pre-existing ``except RuntimeError`` call sites keep working unchanged).
"""

from __future__ import annotations

__all__ = [
    "YgmError",
    "HandlerError",
    "WorkerDiedError",
    "BarrierTimeoutError",
    "ExecTimeoutError",
]


class YgmError(RuntimeError):
    """Base class for every failure the YGM runtime reports."""


class HandlerError(YgmError):
    """A message handler raised; the world itself is still serviceable."""

    def __init__(self, rank: int, detail: str, n_errors: int = 1) -> None:
        self.rank = int(rank)
        self.detail = detail
        self.n_errors = int(n_errors)
        more = f" (+{n_errors - 1} more)" if n_errors > 1 else ""
        super().__init__(f"handler failed on rank {rank}: {detail}{more}")


class WorkerDiedError(YgmError):
    """A worker process died with messages (possibly) still in flight.

    Attributes
    ----------
    rank:
        The first dead rank detected.
    exitcode:
        Its ``Process.exitcode`` (negative = killed by that signal).
    in_flight:
        Outstanding-message counter at detection time — how much work was
        unaccounted for when the worker vanished.
    phase:
        What the driver was blocked on (``"barrier"``, ``"exec"``,
        ``"error-drain"``).
    """

    def __init__(
        self, rank: int, exitcode: int | None, in_flight: int, phase: str
    ) -> None:
        self.rank = int(rank)
        self.exitcode = exitcode
        self.in_flight = int(in_flight)
        self.phase = phase
        super().__init__(
            f"ygm worker rank {rank} died (exitcode {exitcode}) during "
            f"{phase} with {in_flight} message(s) in flight"
        )


class BarrierTimeoutError(YgmError):
    """A quiescence wait exceeded its deadline with workers still alive."""

    def __init__(self, deadline: float, in_flight: int, phase: str = "barrier") -> None:
        self.deadline = float(deadline)
        self.in_flight = int(in_flight)
        self.phase = phase
        super().__init__(
            f"ygm {phase} did not quiesce within {deadline:g}s deadline "
            f"({in_flight} message(s) still in flight)"
        )


class ExecTimeoutError(BarrierTimeoutError):
    """A synchronous ``run_on_rank``/``run_on_all`` wait exceeded its deadline."""

    def __init__(self, deadline: float, waiting_on: int) -> None:
        self.waiting_on = int(waiting_on)
        super().__init__(deadline, waiting_on, phase="exec")
