"""Handler registry for message dispatch.

YGM ships C++ lambdas to remote ranks.  In Python, a multiprocessing
backend cannot pickle arbitrary closures reliably, so — following the
mpi4py discipline of communicating *data* and dispatching on *names* —
every remotely invocable function is registered under a stable string name.
Messages carry the name; the receiving rank resolves it here.

Module-level functions are importable and therefore picklable by
reference, so :func:`resolve_handler` also accepts them directly; the
registry exists for functions created at runtime (e.g. test fixtures) and
for explicit, versionable naming of the library's own handlers.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["ygm_handler", "resolve_handler", "handler_ref", "registered_handlers"]

_REGISTRY: dict[str, Callable] = {}


def ygm_handler(name: str | None = None) -> Callable[[Callable], Callable]:
    """Decorator registering a function as a remotely invocable handler.

    Examples
    --------
    >>> @ygm_handler("demo.add")
    ... def _add(ctx, state, payload):
    ...     state["total"] = state.get("total", 0) + payload
    >>> resolve_handler("demo.add") is _add
    True
    """

    def deco(fn: Callable) -> Callable:
        key = name if name is not None else f"{fn.__module__}.{fn.__qualname__}"
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not fn:
            raise ValueError(f"handler name already registered: {key!r}")
        _REGISTRY[key] = fn
        fn.__ygm_name__ = key  # type: ignore[attr-defined]
        return fn

    return deco


def handler_ref(fn_or_name: Callable | str) -> str | Callable:
    """Return the wire representation of a handler.

    Registered functions and module-level functions travel as their name /
    themselves (both picklable); anything else (lambdas, local defs) is
    returned as-is and will only work on the serial backend, which never
    pickles.
    """
    if isinstance(fn_or_name, str):
        if fn_or_name not in _REGISTRY:
            raise KeyError(f"unknown handler name: {fn_or_name!r}")
        return fn_or_name
    name = getattr(fn_or_name, "__ygm_name__", None)
    if name is not None:
        return name
    return fn_or_name


def resolve_handler(ref: Callable | str) -> Callable:
    """Resolve a wire representation back to a callable."""
    if isinstance(ref, str):
        try:
            return _REGISTRY[ref]
        except KeyError:
            raise KeyError(f"unknown handler name: {ref!r}") from None
    return ref


def registered_handlers() -> tuple[str, ...]:
    """Names of all registered handlers (diagnostics)."""
    return tuple(sorted(_REGISTRY))
