"""Backend protocol and the deterministic serial backend.

A backend owns the per-rank container state and the message fabric.  The
message calling convention (shared by all backends) is::

    handler(ctx, state, payload)

where ``ctx`` is a :class:`HandlerContext` bound to the executing rank
(through which handlers issue *nested* asynchronous sends, exactly as YGM
lambdas do), ``state`` is the local state of the addressed container on
that rank, and ``payload`` is an arbitrary picklable value.

The serial backend keeps one mailbox (deque) per rank and drains them
round-robin, one message per rank per turn.  This is single-process and
therefore adds no parallelism, but it is *deterministic*: the same program
produces the same interleaving every run, which makes it the default for
tests and for all library algorithms (whose results are interleaving-
independent — a property the cross-backend tests check against the
multiprocessing backend).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.ygm.handlers import resolve_handler

__all__ = ["HandlerContext", "Backend", "SerialBackend"]


class HandlerContext:
    """Execution context passed to every handler.

    Attributes
    ----------
    rank:
        The rank the handler is executing on.
    n_ranks:
        World size.
    """

    __slots__ = ("rank", "n_ranks", "_send", "_states")

    def __init__(
        self,
        rank: int,
        n_ranks: int,
        send: Callable[[int, str, Any, Any], None],
        states: dict[str, Any],
    ) -> None:
        self.rank = rank
        self.n_ranks = n_ranks
        self._send = send
        self._states = states

    def send(self, target_rank: int, container_id: str, handler_ref: Any, payload: Any) -> None:
        """Issue a nested asynchronous message to *target_rank*."""
        self._send(target_rank, container_id, handler_ref, payload)

    def local_state(self, container_id: str) -> Any:
        """Local state of another container on this rank.

        YGM visitors routinely touch several containers that share a rank
        (e.g. a map visitor appending results into a bag); this is the
        escape hatch that enables that pattern.
        """
        return self._states[container_id]


class Backend:
    """Abstract backend interface (see module docstring for semantics)."""

    n_ranks: int

    def create_state(self, container_id: str, factory_ref: Any, args: tuple = ()) -> None:
        """Create per-rank local state: ``factory(rank, *args)`` on every rank."""
        raise NotImplementedError

    def destroy_state(self, container_id: str) -> None:
        """Discard a container's state on every rank."""
        raise NotImplementedError

    def send(self, target_rank: int, container_id: str, handler_ref: Any, payload: Any) -> None:
        """Enqueue a message from the driver."""
        raise NotImplementedError

    def run_until_quiescent(self) -> None:
        """Deliver messages (including nested sends) until none remain."""
        raise NotImplementedError

    def run_on_rank(self, rank: int, fn_ref: Any, payload: Any = None) -> Any:
        """Synchronously execute ``fn(ctx, payload)`` on *rank*; return result."""
        raise NotImplementedError

    def run_on_all(self, fn_ref: Any, payload: Any = None) -> list[Any]:
        """Synchronously execute ``fn(ctx, payload)`` on every rank."""
        return [self.run_on_rank(r, fn_ref, payload) for r in range(self.n_ranks)]

    def shutdown(self) -> None:
        """Release backend resources (idempotent)."""

    # -- statistics ---------------------------------------------------------
    @property
    def messages_delivered(self) -> int:
        """Total messages processed since construction (diagnostics)."""
        raise NotImplementedError


class SerialBackend(Backend):
    """Deterministic single-process backend with round-robin mailboxes.

    Accepts a :class:`~repro.ygm.faults.FaultPlan` like the multiprocessing
    backend does; kinds that have no single-process equivalent (``crash``,
    ``hang``) are simulated by raising the same typed error the driver
    would see from a real worker, so pipeline retry/resume policy can be
    exercised deterministically without forking.
    """

    def __init__(self, n_ranks: int, *, fault_plan=None) -> None:
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self._mailboxes: list[deque] = [deque() for _ in range(self.n_ranks)]
        # _states[container_id][rank] -> local state
        self._states: dict[str, list[Any]] = {}
        self._delivered = 0
        # Per-handler delivery counts: the communication profile of a run
        # (which algorithms send what), keyed by registered handler name.
        self._handler_counts: dict[str, int] = {}
        self._injectors = None
        if fault_plan is not None and fault_plan:
            from repro.ygm.faults import FaultInjector

            self._injectors = [
                FaultInjector(fault_plan, rank) for rank in range(self.n_ranks)
            ]

    # -- container state ----------------------------------------------------
    def create_state(self, container_id: str, factory_ref: Any, args: tuple = ()) -> None:
        if container_id in self._states:
            raise ValueError(f"container already exists: {container_id!r}")
        factory = resolve_handler(factory_ref)
        self._states[container_id] = [
            factory(rank, *args) for rank in range(self.n_ranks)
        ]

    def destroy_state(self, container_id: str) -> None:
        self._states.pop(container_id, None)

    # -- messaging ----------------------------------------------------------
    def send(self, target_rank: int, container_id: str, handler_ref: Any, payload: Any) -> None:
        if not 0 <= target_rank < self.n_ranks:
            raise IndexError(f"rank {target_rank} out of range (size {self.n_ranks})")
        self._mailboxes[target_rank].append((container_id, handler_ref, payload))

    def run_until_quiescent(self) -> None:
        mailboxes = self._mailboxes
        # Round-robin: one message per rank per sweep, until all are empty.
        # Nested sends issued by handlers land in these same mailboxes and
        # are drained by subsequent sweeps.
        while True:
            any_work = False
            for rank in range(self.n_ranks):
                box = mailboxes[rank]
                if box:
                    any_work = True
                    container_id, handler_ref, payload = box.popleft()
                    self._dispatch(rank, container_id, handler_ref, payload)
            if not any_work:
                return

    def _dispatch(self, rank: int, container_id: str, handler_ref: Any, payload: Any) -> None:
        if self._injectors is not None:
            self._apply_fault(rank)
        try:
            states_view = {
                cid: per_rank[rank] for cid, per_rank in self._states.items()
            }
            state = states_view[container_id]
        except KeyError:
            raise KeyError(f"no such container on rank {rank}: {container_id!r}") from None
        ctx = HandlerContext(rank, self.n_ranks, self.send, states_view)
        resolve_handler(handler_ref)(ctx, state, payload)
        self._delivered += 1
        key = handler_ref if isinstance(handler_ref, str) else getattr(
            handler_ref, "__ygm_name__", repr(handler_ref)
        )
        self._handler_counts[key] = self._handler_counts.get(key, 0) + 1

    def _apply_fault(self, rank: int) -> None:
        """Manifest the fault due at this rank's next message, if any.

        ``delay`` sleeps for real (plans are tiny); ``raise`` surfaces as
        the same :class:`HandlerError` the multiprocessing backend's error
        queue would report; ``crash``/``hang`` raise the typed error a
        real dead/stalled worker would produce on the driver.
        """
        import time

        from repro.ygm.errors import (
            BarrierTimeoutError,
            HandlerError,
            WorkerDiedError,
        )

        fault = self._injectors[rank].next_fault()
        if fault is None:
            return
        if fault.kind == "delay":
            time.sleep(fault.seconds)
        elif fault.kind == "raise":
            raise HandlerError(
                rank, f"InjectedFault: injected fault: {fault.describe()}", 1
            )
        elif fault.kind == "crash":
            raise WorkerDiedError(
                rank, -9, sum(len(b) for b in self._mailboxes) + 1, "barrier"
            )
        elif fault.kind == "hang":
            raise BarrierTimeoutError(
                0.0, sum(len(b) for b in self._mailboxes) + 1, "barrier"
            )

    # -- synchronous execution ----------------------------------------------
    def run_on_rank(self, rank: int, fn_ref: Any, payload: Any = None) -> Any:
        if not 0 <= rank < self.n_ranks:
            raise IndexError(f"rank {rank} out of range (size {self.n_ranks})")
        states_view = {cid: per_rank[rank] for cid, per_rank in self._states.items()}
        ctx = HandlerContext(rank, self.n_ranks, self.send, states_view)
        return resolve_handler(fn_ref)(ctx, payload)

    @property
    def messages_delivered(self) -> int:
        return self._delivered

    def handler_counts(self) -> dict[str, int]:
        """Messages delivered per handler name (communication profile)."""
        return dict(self._handler_counts)

    def shutdown(self) -> None:
        self._mailboxes = [deque() for _ in range(self.n_ranks)]
        self._states.clear()
