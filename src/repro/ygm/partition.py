"""Owner functions: which rank owns a key.

YGM containers distribute entries by hashing keys to ranks; block
partitioning is used for dense index spaces (``DistArray``).  Both
partitioners are deterministic and backend-independent, so the serial and
multiprocessing backends place every key identically — a property the
cross-backend equivalence tests rely on.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

__all__ = ["HashPartitioner", "BlockPartitioner"]

# splitmix64 constants — a fast, well-mixed integer hash (public domain).
_SM64_1 = np.uint64(0x9E3779B97F4A7C15)
_SM64_2 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_3 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    with np.errstate(over="ignore"):
        z = x + _SM64_1
        z = (z ^ (z >> np.uint64(30))) * _SM64_2
        z = (z ^ (z >> np.uint64(27))) * _SM64_3
        return z ^ (z >> np.uint64(31))


class HashPartitioner:
    """Assigns keys to ranks by a stable hash.

    Integer keys (including numpy integers) are mixed with splitmix64 so
    that consecutive vertex ids spread across ranks; other hashable keys
    fall back to a stable string-bytes fold (Python's salted ``hash`` would
    differ between worker processes).
    """

    __slots__ = ("n_ranks",)

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.n_ranks = int(n_ranks)

    def owner(self, key: Hashable) -> int:
        """Rank owning *key*."""
        if isinstance(key, (int, np.integer)):
            mixed = _splitmix64(np.uint64(np.int64(key)).reshape(1))[0]
            return int(mixed % np.uint64(self.n_ranks))
        if isinstance(key, tuple):
            acc = np.uint64(0)
            with np.errstate(over="ignore"):
                for part in key:
                    sub = self.owner(part)
                    acc = _splitmix64(
                        (acc * np.uint64(1000003) + np.uint64(sub + 1)).reshape(1)
                    )[0]
            return int(acc % np.uint64(self.n_ranks))
        data = repr(key).encode("utf-8")
        acc = np.uint64(1469598103934665603)
        with np.errstate(over="ignore"):
            for byte in data:
                acc = (acc ^ np.uint64(byte)) * np.uint64(1099511628211)
        return int(acc % np.uint64(self.n_ranks))

    def owner_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner` for integer key arrays."""
        keys = np.asarray(keys)
        if keys.dtype.kind not in "iu":
            raise TypeError("owner_array requires integer keys")
        mixed = _splitmix64(keys.astype(np.int64).view(np.uint64))
        return (mixed % np.uint64(self.n_ranks)).astype(np.int64)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HashPartitioner) and other.n_ranks == self.n_ranks

    def __repr__(self) -> str:  # pragma: no cover
        return f"HashPartitioner(n_ranks={self.n_ranks})"


class BlockPartitioner:
    """Assigns a dense index space ``0..n-1`` to ranks in contiguous blocks."""

    __slots__ = ("n_ranks", "n_items", "_block")

    def __init__(self, n_ranks: int, n_items: int) -> None:
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        self.n_ranks = int(n_ranks)
        self.n_items = int(n_items)
        self._block = max(1, -(-self.n_items // self.n_ranks))  # ceil div

    def owner(self, index: int) -> int:
        """Rank owning *index*."""
        if not 0 <= index < max(self.n_items, 1):
            if index < 0 or index >= self.n_items:
                raise IndexError(
                    f"index {index} out of range for {self.n_items} items"
                )
        return min(int(index) // self._block, self.n_ranks - 1)

    def owner_array(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.n_items
        ):
            raise IndexError("index out of range")
        return np.minimum(indices // self._block, self.n_ranks - 1)

    def local_range(self, rank: int) -> tuple[int, int]:
        """The ``[start, stop)`` index block owned by *rank*."""
        start = min(rank * self._block, self.n_items)
        stop = min(start + self._block, self.n_items)
        return start, stop

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BlockPartitioner(n_ranks={self.n_ranks}, n_items={self.n_items})"
        )
