"""Deterministic, seeded fault injection for the YGM backends.

A :class:`FaultPlan` is a picklable description of *when and how* ranks
misbehave, expressed against the only clock every backend shares: the
per-rank count of delivered ``_MSG`` messages.  Backends accept a plan at
construction and consult a :class:`FaultInjector` before dispatching each
message, so a given (program, plan) pair replays the same failure on every
run — the property the failure-matrix tests and the chaos parity mode rely
on.

Fault kinds (``FaultSpec.kind``):

``"crash"``
    The rank dies hard at its Nth message.  On the multiprocessing backend
    the worker SIGKILLs itself (no cleanup, counters left dangling —
    exactly what an OOM kill looks like); the serial backend simulates the
    observable driver-side outcome by raising
    :class:`~repro.ygm.errors.WorkerDiedError`.
``"hang"``
    The rank stalls inside message N without completing it.  On the
    multiprocessing backend the worker sleeps without decrementing the
    outstanding counter, so the barrier deadline fires; the serial backend
    raises :class:`~repro.ygm.errors.BarrierTimeoutError` directly.
``"delay"``
    The rank sleeps ``seconds`` before handling message N, then proceeds
    normally (slow-network emulation; results must be unaffected).
``"raise"``
    The handler for message N raises :class:`InjectedFault`, exercising
    the existing handler-error path (reported at the next barrier).

Plans can be written explicitly or drawn from a seed with
:meth:`FaultPlan.seeded`, which is how ``repro-botnets verify --chaos``
turns one integer into a repeatable failure scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import derive_rng

__all__ = ["FaultSpec", "FaultPlan", "FaultInjector", "InjectedFault", "FAULT_KINDS"]

FAULT_KINDS = ("crash", "hang", "delay", "raise")

#: How long a "hang" sleeps on the multiprocessing backend.  Long enough
#: that any realistic barrier deadline fires first, short enough that a
#: leaked worker cannot outlive a test session by much; shutdown escalation
#: terminates the sleeper long before this elapses.
HANG_SECONDS = 600.0


class InjectedFault(RuntimeError):
    """Raised by a ``"raise"`` fault in place of running the real handler."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *rank* misbehaves as *kind* at its Nth delivered message.

    ``at_message`` counts from 1 in per-rank delivery order; ``seconds``
    applies to ``"delay"`` only.
    """

    kind: str
    rank: int
    at_message: int
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.at_message < 1:
            raise ValueError(
                f"at_message counts from 1, got {self.at_message}"
            )

    def describe(self) -> str:
        """Compact rendering, e.g. ``crash@rank1/msg5``."""
        extra = f" for {self.seconds:g}s" if self.kind == "delay" else ""
        return f"{self.kind}@rank{self.rank}/msg{self.at_message}{extra}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of :class:`FaultSpec` entries."""

    faults: tuple[FaultSpec, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (inject nothing)."""
        return cls(())

    @classmethod
    def single(
        cls, kind: str, rank: int, at_message: int, seconds: float = 0.0
    ) -> "FaultPlan":
        """A plan with exactly one fault."""
        return cls((FaultSpec(kind, rank, at_message, seconds),))

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_ranks: int,
        *,
        kinds: tuple[str, ...] = ("crash", "raise", "delay"),
        max_message: int = 40,
    ) -> "FaultPlan":
        """Draw one repeatable fault from *seed*.

        The same ``(seed, n_ranks)`` always yields the same plan.  ``hang``
        is excluded by default because it only resolves under a configured
        barrier deadline; chaos callers that set one can opt back in.

        Examples
        --------
        >>> FaultPlan.seeded(7, 2) == FaultPlan.seeded(7, 2)
        True
        """
        rng = derive_rng(seed, "ygm.faults.plan")
        kind = kinds[int(rng.integers(0, len(kinds)))]
        rank = int(rng.integers(0, n_ranks))
        at_message = int(rng.integers(1, max_message + 1))
        seconds = round(float(rng.uniform(0.01, 0.1)), 3) if kind == "delay" else 0.0
        return cls.single(kind, rank, at_message, seconds)

    def for_rank(self, rank: int) -> tuple[FaultSpec, ...]:
        """The faults scheduled on *rank*, in delivery order."""
        return tuple(
            sorted(
                (f for f in self.faults if f.rank == rank),
                key=lambda f: f.at_message,
            )
        )

    def describe(self) -> str:
        """One-line human-readable plan summary."""
        if not self.faults:
            return "no faults"
        return ", ".join(f.describe() for f in self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)


@dataclass
class FaultInjector:
    """Per-rank runtime cursor over a plan (lives inside one backend rank).

    Backends call :meth:`next_fault` once per delivered message; the
    injector returns the :class:`FaultSpec` due at that delivery count (or
    ``None``) and advances its clock.  How each kind manifests is the
    backend's business — see the module docstring.
    """

    plan: FaultPlan
    rank: int
    delivered: int = 0
    _pending: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._pending = list(self.plan.for_rank(self.rank))

    def next_fault(self) -> FaultSpec | None:
        """Advance the message clock; return the fault due now, if any."""
        self.delivered += 1
        if self._pending and self._pending[0].at_message == self.delivered:
            return self._pending.pop(0)
        return None
