"""The pipeline's canonical plans and their stage kernels.

One plan per paper step, each a thin composition of
:mod:`repro.kernels`:

- :data:`PROJECTION_PLAN` — Step 1: map :func:`project_shard` over
  page-aligned ``(users, pages, times)`` slices, reduce with
  :func:`project_reduce` into merged triples, ``w'`` pair weights, and
  the ``P'`` ledger;
- :data:`SURVEY_PLAN` — Step 2: map :func:`survey_shard` over wedge
  position ranges of a shared forward adjacency, reduce by
  concatenating the raw triangle arrays in shard order;
- :data:`VALIDATION_PLAN` — Step 3: map :func:`hyperedge_shard` over
  triplet ranges against a shared CSR incidence, reduce by
  concatenation.

Stage kernels follow the executor convention ``fn(shard, context)`` /
``fn(partials, context)`` with picklable contexts (plain dicts of
arrays and ints), so every plan runs unchanged on
:class:`~repro.exec.executors.SerialExecutor` and
:class:`~repro.exec.executors.YgmExecutor`.  The shard builders
(:func:`page_aligned_shards`, :func:`position_range_shards`,
:func:`triplet_range_shards`) are driver-side helpers producing the
matching shard lists; :func:`adaptive_shard_count` sizes those lists so
each shard carries roughly :data:`SHARD_TARGET_SECONDS` of serial work —
big enough that per-shard dispatch overhead is noise, small enough that
a pool still load-balances.
"""

from __future__ import annotations

import numpy as np

from repro.exec.plan import KernelStage, Plan
from repro.kernels import (
    close_wedges,
    cooccur_pairs,
    hyperedge_count,
    merge_triples,
    pair_ledger,
    pair_weights,
)

__all__ = [
    "PROJECTION_PLAN",
    "SURVEY_PLAN",
    "VALIDATION_PLAN",
    "SHARD_TARGET_SECONDS",
    "PROJECTION_ROWS_PER_SECOND",
    "SURVEY_WEDGES_PER_SECOND",
    "VALIDATION_TRIPLETS_PER_SECOND",
    "adaptive_shard_count",
    "project_shard",
    "project_reduce",
    "survey_shard",
    "survey_reduce",
    "hyperedge_shard",
    "hyperedge_reduce",
    "page_aligned_shards",
    "position_range_shards",
    "triplet_range_shards",
]


# ---------------------------------------------------------------------------
# Adaptive shard sizing
# ---------------------------------------------------------------------------

#: Serial work one shard should carry.  Big enough that batched dispatch,
#: arena publishing, and the per-shard result message are amortized into
#: the noise (each costs well under a millisecond); small enough that a
#: pool gets several shards per worker to balance skew.
SHARD_TARGET_SECONDS = 0.1

#: Measured single-core throughputs of the three map kernels (dev host,
#: bench-scale inputs).  Order of magnitude is what matters: a 3×-off
#: estimate yields 30 ms or 300 ms shards, both of which still amortize
#: dispatch overhead and still load-balance.
PROJECTION_ROWS_PER_SECOND = 400_000
SURVEY_WEDGES_PER_SECOND = 2_500_000
VALIDATION_TRIPLETS_PER_SECOND = 750_000


def adaptive_shard_count(
    n_items: int,
    n_workers: int,
    items_per_second: float,
    *,
    target_seconds: float = SHARD_TARGET_SECONDS,
    max_shards_per_worker: int = 32,
) -> int:
    """Shard count sizing each shard to ~``target_seconds`` of work.

    At least one shard per worker (an idle worker helps nobody), at most
    ``max_shards_per_worker`` per worker (beyond that, finer shards buy
    no balance but keep paying per-shard cost).  A serial executor
    (``n_workers <= 1``) always gets a single shard: splitting work that
    runs in-process only adds partial-merge overhead.

    Examples
    --------
    >>> adaptive_shard_count(1_000_000, 4, 500_000)
    20
    >>> adaptive_shard_count(1_000, 4, 500_000)  # tiny input: 1/worker
    4
    >>> adaptive_shard_count(1_000_000, 1, 500_000)  # serial: one shard
    1
    """
    n_workers = max(1, int(n_workers))
    if n_workers == 1 or n_items <= 0:
        return 1
    per_shard = max(1, int(items_per_second * target_seconds))
    by_cost = -(-int(n_items) // per_shard)
    return max(n_workers, min(by_cost, max_shards_per_worker * n_workers))


# ---------------------------------------------------------------------------
# Step 1 — projection
# ---------------------------------------------------------------------------


def project_shard(shard, context):
    """Map stage: distinct in-window triples of one page-aligned slice.

    ``shard`` is ``(users, pages, times)`` sorted by (page, time) with
    every page wholly contained; ``context`` carries ``delta1``,
    ``delta2``, and ``pair_batch``.  Returns ``(pg, a, b, raw)`` —
    shard-deduplicated triples plus the raw in-window pair count.
    """
    users, pages, times = shard
    window = (int(context["delta1"]), int(context["delta2"]))
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    raw = 0
    for pg, a, b, n_raw in cooccur_pairs(
        users, pages, times, window, int(context["pair_batch"])
    ):
        parts.append((pg, a, b))
        raw += n_raw
    pg, a, b = merge_triples(parts)
    return pg, a, b, raw


def project_reduce(partials, context):
    """Reduce stage: fold shard triples into ``w'`` and the ``P'`` ledger.

    Shards hold disjoint pages, so the global merge is a concatenate +
    dedup; ``context["n_users"]`` sizes the dense ledger.  Returns a dict
    of arrays the engine wraps into a
    :class:`~repro.projection.ci_graph.CommonInteractionGraph`.
    """
    pg, a, b = merge_triples([(p[0], p[1], p[2]) for p in partials])
    ua, ub, w = pair_weights(a, b)
    page_counts = pair_ledger(pg, a, b, int(context["n_users"]))
    return {
        "pg": pg,
        "a": a,
        "b": b,
        "ua": ua,
        "ub": ub,
        "w": w,
        "page_counts": page_counts,
        "pair_observations": sum(int(p[3]) for p in partials),
    }


def page_aligned_shards(
    users: np.ndarray,
    pages: np.ndarray,
    times: np.ndarray,
    n_shards: int,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Cut (page, time)-sorted arrays into page-whole row slices.

    Target cuts are equal row counts, then snapped forward to the next
    page boundary so no page straddles two shards (the invariant
    :func:`project_shard`'s per-shard dedup relies on).
    """
    n = users.shape[0]
    if n == 0:
        return []
    n_shards = max(1, int(n_shards))
    boundary = np.concatenate(
        ([True], pages[1:] != pages[:-1])
    )  # True at each page's first row
    starts = np.flatnonzero(boundary)
    targets = (np.arange(1, n_shards) * n) // n_shards
    cut_idx = np.unique(np.searchsorted(starts, targets, side="left"))
    cut_idx = cut_idx[cut_idx < starts.shape[0]]
    cuts = [0] + [int(starts[i]) for i in cut_idx if 0 < starts[i] < n] + [n]
    cuts = sorted(set(cuts))
    return [
        (users[lo:hi], pages[lo:hi], times[lo:hi])
        for lo, hi in zip(cuts[:-1], cuts[1:])
    ]


# ---------------------------------------------------------------------------
# Step 2 — triangle survey
# ---------------------------------------------------------------------------


def survey_shard(shard, context):
    """Map stage: close the wedges of one adjacency position range.

    ``shard`` is ``(start_pos, stop_pos)``; ``context`` carries the
    shared ``adj`` dict from :func:`repro.kernels.forward_adjacency`
    plus its ``counts``/``cum`` wedge prices.  Returns raw triangle
    arrays.
    """
    start_pos, stop_pos = shard
    return close_wedges(
        int(start_pos),
        int(stop_pos),
        context["counts"],
        context["cum"],
        context["adj"],
    )


def survey_reduce(partials, context):
    """Reduce stage: concatenate raw triangle batches in shard order."""
    kept = [p for p in partials if p[0].shape[0]]
    if not kept:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy(), e.copy(), e.copy(), e.copy()
    return tuple(np.concatenate([p[i] for p in kept]) for i in range(6))


def position_range_shards(
    counts: np.ndarray, cum: np.ndarray, wedge_batch: int
) -> list[tuple[int, int]]:
    """Cut adjacency positions into ranges of ≤ ``wedge_batch`` wedges."""
    m = counts.shape[0]
    shards: list[tuple[int, int]] = []
    start_pos = 0
    while start_pos < m:
        stop_pos = int(
            np.searchsorted(cum, cum[start_pos] + max(wedge_batch, 1), side="left")
        )
        stop_pos = max(stop_pos, start_pos + 1)
        stop_pos = min(stop_pos, m)
        shards.append((start_pos, stop_pos))
        start_pos = stop_pos
    return shards


# ---------------------------------------------------------------------------
# Step 3 — hypergraph validation
# ---------------------------------------------------------------------------


def hyperedge_shard(shard, context):
    """Map stage: ``w_xyz`` for one triplet range.

    ``shard`` is ``(a, b, c)`` id arrays; ``context`` carries the CSR
    incidence (``indptr``, ``page_ids``).
    """
    a, b, c = shard
    return hyperedge_count(context["indptr"], context["page_ids"], a, b, c)


def hyperedge_reduce(partials, context):
    """Reduce stage: concatenate per-range weights in shard order."""
    if not partials:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(partials)


def triplet_range_shards(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, n_shards: int
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Cut aligned triplet arrays into ~equal contiguous ranges."""
    n = a.shape[0]
    if n == 0:
        return []
    n_shards = max(1, min(int(n_shards), n))
    cuts = (np.arange(n_shards + 1) * n) // n_shards
    return [
        (a[lo:hi], b[lo:hi], c[lo:hi])
        for lo, hi in zip(cuts[:-1], cuts[1:])
        if hi > lo
    ]


# ---------------------------------------------------------------------------
# Plan objects
# ---------------------------------------------------------------------------

PROJECTION_PLAN = Plan(
    name="projection",
    map_stage=KernelStage(
        "windowed_pairs", "repro.exec.plans:project_shard", shard_key="page_range"
    ),
    reduce_stage=KernelStage("reduce_ci", "repro.exec.plans:project_reduce"),
)

SURVEY_PLAN = Plan(
    name="survey",
    map_stage=KernelStage(
        "close_wedges", "repro.exec.plans:survey_shard", shard_key="wedge_range"
    ),
    reduce_stage=KernelStage("concat_raw", "repro.exec.plans:survey_reduce"),
)

VALIDATION_PLAN = Plan(
    name="validation",
    map_stage=KernelStage(
        "hyperedge_count",
        "repro.exec.plans:hyperedge_shard",
        shard_key="triplet_range",
    ),
    reduce_stage=KernelStage("concat_w", "repro.exec.plans:hyperedge_reduce"),
)


# -- doctest helpers (see repro.exec.plan.Plan) ------------------------------


def _demo_square(shard, context):
    return shard * shard


def _demo_sum(partials, context):
    return sum(partials)
