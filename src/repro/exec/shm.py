"""Shared-memory arena: publish arrays once, attach them zero-copy.

:class:`ShmArena` is the driver-side half of the parallel executor's
zero-copy input path: every numpy array in a plan's shards and context is
copied *once* into a POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`) and replaced by a tiny picklable
:class:`ShmRef` descriptor.  Worker processes resolve refs back into
arrays with :func:`materialize` — an ``np.ndarray`` view straight over
the mapped segment, no per-task pickling or copying of the data itself.

Ownership rules, enforced here so executors cannot leak ``/dev/shm``:

- Segments are **refcounted per arena**: publishing the same array object
  twice (e.g. an array appearing in both a shard and the context) reuses
  one segment; :meth:`ShmArena.close` unlinks everything the arena still
  owns, and is idempotent.
- Unlink is **guaranteed on crash**: every live segment is also tracked
  in a module-level registry drained by an ``atexit`` hook, so a driver
  that dies with arenas open still removes its segments on interpreter
  shutdown (a SIGKILLed driver is covered by the stdlib resource
  tracker, which survives the process).
- Workers never unlink.  :class:`SegmentCache` attaches by name, keeps
  the mapping alive while kernel outputs may still reference it, and
  :meth:`SegmentCache.close` releases the maps (tolerating still-exported
  buffers — the segment memory is reclaimed when the last map closes).

``live_segment_names()`` exposes the registry for leak accounting in
tests: after every executor shutdown it must be empty.
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "ShmRef",
    "ShmArena",
    "SegmentCache",
    "materialize",
    "live_segment_names",
    "disown_resource_tracking",
]


def disown_resource_tracking() -> None:
    """Detach this process from shared-memory resource tracking.

    Call once at the top of a *worker* entrypoint.  Forked workers share
    the driver's resource-tracker process, so their attach-time
    registrations and any cleanup messages race the driver's own
    bookkeeping for the very same segments (stdlib attach registers
    unconditionally before 3.13's ``track=False``).  Unlink is
    exclusively the publishing arena's job; workers only ever attach, so
    they have nothing legitimate to tell the tracker.
    """
    resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
    resource_tracker.unregister = lambda *a, **k: None  # type: ignore[assignment]


@dataclass(frozen=True)
class ShmRef:
    """Picklable descriptor of one published array.

    ``name`` is the shared-memory segment; ``shape``/``dtype`` rebuild
    the exact array view on the attaching side.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str


# Module-level accounting of every segment any arena currently owns, so a
# crashing driver still unlinks on interpreter exit (and tests can assert
# zero leaks).  Maps segment name -> SharedMemory handle.
_LIVE: dict[str, shared_memory.SharedMemory] = {}
_LIVE_LOCK = threading.Lock()


def _unlink_leftovers() -> None:  # pragma: no cover - crash path
    with _LIVE_LOCK:
        leftovers = list(_LIVE.values())
        _LIVE.clear()
    for shm in leftovers:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


atexit.register(_unlink_leftovers)


def live_segment_names() -> tuple[str, ...]:
    """Names of all segments currently owned by any open arena."""
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE))


class ShmArena:
    """Owns a set of refcounted shared-memory segments for one run.

    Use as a context manager (or call :meth:`close` in a ``finally``):
    the arena unlinks everything it published, exactly once, even when
    the run it served failed.

    Examples
    --------
    >>> import numpy as np
    >>> with ShmArena() as arena:
    ...     ref = arena.publish(np.arange(4))
    ...     cache = SegmentCache()
    ...     got = materialize(ref, cache)
    ...     int(got.sum())
    6
    >>> cache.close()
    >>> arena.n_segments
    0
    """

    def __init__(self) -> None:
        # name -> (handle, refcount); id(array) -> (array, ref) for
        # publish dedup.  The array object itself is pinned in the value:
        # keying on a bare id() would let a collected array's id be
        # recycled by a *different* array and falsely dedup to the wrong
        # segment.
        self._segments: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        self._by_array: dict[int, tuple[np.ndarray, ShmRef]] = {}
        self._closed = False

    # -- publishing ---------------------------------------------------------
    def publish(self, array: np.ndarray) -> ShmRef:
        """Copy *array* into a fresh segment (or bump an existing ref).

        The same array *object* published twice shares one segment; the
        copy happens only on first publish.
        """
        if self._closed:
            raise RuntimeError("arena is closed")
        arr = np.ascontiguousarray(array)
        key = id(array)
        entry = self._by_array.get(key)
        if entry is not None:
            _pinned, ref = entry
            shm, count = self._segments[ref.name]
            self._segments[ref.name] = (shm, count + 1)
            return ref
        # Zero-size arrays still need a valid (1-byte) segment to attach.
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes)
        )
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            del view
        ref = ShmRef(shm.name, tuple(arr.shape), arr.dtype.str)
        self._segments[shm.name] = (shm, 1)
        self._by_array[key] = (array, ref)
        with _LIVE_LOCK:
            _LIVE[shm.name] = shm
        return ref

    def share(self, obj):
        """Deep-swap every ndarray in *obj* for a :class:`ShmRef`.

        Recurses through dicts, lists, and tuples (the shapes plan shards
        and contexts actually take); scalars and other leaves pass
        through untouched, so the result pickles small.
        """
        if isinstance(obj, np.ndarray):
            return self.publish(obj)
        if isinstance(obj, dict):
            return {k: self.share(v) for k, v in obj.items()}
        if isinstance(obj, tuple):
            return tuple(self.share(v) for v in obj)
        if isinstance(obj, list):
            return [self.share(v) for v in obj]
        return obj

    # -- release ------------------------------------------------------------
    def release(self, ref: ShmRef) -> None:
        """Drop one reference to *ref*'s segment; unlink at zero."""
        entry = self._segments.get(ref.name)
        if entry is None:
            return
        shm, count = entry
        if count > 1:
            self._segments[ref.name] = (shm, count - 1)
            return
        del self._segments[ref.name]
        self._by_array = {
            k: (arr, r)
            for k, (arr, r) in self._by_array.items()
            if r.name != ref.name
        }
        self._unlink(shm)

    def close(self) -> None:
        """Unlink every segment the arena still owns (idempotent)."""
        if self._closed:
            return
        self._closed = True
        segments = [shm for shm, _count in self._segments.values()]
        self._segments.clear()
        self._by_array.clear()
        for shm in segments:
            self._unlink(shm)

    @staticmethod
    def _unlink(shm: shared_memory.SharedMemory) -> None:
        with _LIVE_LOCK:
            _LIVE.pop(shm.name, None)
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exported driver-side view
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    @property
    def n_segments(self) -> int:
        """Number of segments the arena currently owns."""
        return len(self._segments)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass


class SegmentCache:
    """Worker-side attachment cache: one map per segment per task.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory`
    handles alive while materialized arrays are in use; :meth:`close`
    releases the maps.  A segment whose buffer is still exported (a
    kernel returned a view into it) is skipped rather than raising — the
    OS reclaims the memory when the process drops the map.
    """

    def __init__(self) -> None:
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def get(self, ref: ShmRef) -> np.ndarray:
        """The array behind *ref*, as a zero-copy view over the segment."""
        shm = self._attached.get(ref.name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=ref.name)
            self._attached[ref.name] = shm
        return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)

    def close(self) -> None:
        """Release all attachments (idempotent, never raises)."""
        attached = list(self._attached.values())
        self._attached.clear()
        for shm in attached:
            try:
                shm.close()
            except BufferError:  # view still exported: let process exit reap
                pass


def materialize(obj, cache: SegmentCache):
    """Inverse of :meth:`ShmArena.share`: swap refs back into arrays."""
    if isinstance(obj, ShmRef):
        return cache.get(obj)
    if isinstance(obj, dict):
        return {k: materialize(v, cache) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(materialize(v, cache) for v in obj)
    if isinstance(obj, list):
        return [materialize(v, cache) for v in obj]
    return obj
