"""Shared-memory arena: publish arrays once, attach them zero-copy.

:class:`ShmArena` is the driver-side half of the parallel executor's
zero-copy input path: every numpy array in a plan's shards and context is
copied *once* into a POSIX shared-memory segment
(:mod:`multiprocessing.shared_memory`) and replaced by a tiny picklable
:class:`ShmRef` descriptor.  Worker processes resolve refs back into
arrays with :func:`materialize` — an ``np.ndarray`` view straight over
the mapped segment, no per-task pickling or copying of the data itself.

Ownership rules, enforced here so executors cannot leak ``/dev/shm``:

- Segments are **refcounted per arena**: publishing the same array object
  twice (e.g. an array appearing in both a shard and the context) reuses
  one segment; :meth:`ShmArena.close` unlinks everything the arena still
  owns, and is idempotent.
- Unlink is **guaranteed on crash**: every live segment is also tracked
  in a module-level registry drained by an ``atexit`` hook, so a driver
  that dies with arenas open still removes its segments on interpreter
  shutdown (a SIGKILLed driver is covered by the stdlib resource
  tracker, which survives the process).
- Workers never unlink.  :class:`SegmentCache` attaches by name, keeps
  the mapping alive while kernel outputs may still reference it, and
  :meth:`SegmentCache.close` releases the maps (tolerating still-exported
  buffers — the segment memory is reclaimed when the last map closes).

The **output** path inverts the roles: a worker writes its kernel
results into fresh segments through an :class:`OutputWriter` (explicit,
sweepable names — the worker never unlinks), and the driver takes
ownership on receipt with :func:`claim_output` (copy out, unlink
immediately).  A worker that dies between publish and claim leaves
orphans; :func:`sweep_segments` removes everything under a name prefix,
which is why output names embed the driver pid.

``live_segment_names()`` exposes the registry for leak accounting in
tests: after every executor shutdown it must be empty.
``leaked_shm_files()`` is the cross-process complement: it lists what is
actually left under ``/dev/shm``, so CI can assert a whole bench run
leaked nothing.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

__all__ = [
    "ShmRef",
    "ShmArena",
    "SegmentCache",
    "OutputWriter",
    "materialize",
    "claim_output",
    "discard_output",
    "sweep_segments",
    "output_prefix",
    "live_segment_names",
    "leaked_shm_files",
    "disown_resource_tracking",
]

#: Where POSIX shared memory surfaces as files (Linux).  Sweep and leak
#: audits are no-ops on platforms without it.
_SHM_DIR = Path("/dev/shm")

#: Name prefix of executor *output* segments: ``rbo<driver-pid>x...``.
#: The driver pid scopes sweeps to one executor's driver process, so
#: concurrent test sessions cannot unlink each other's segments.
_OUT_PREFIX = "rbo"


def disown_resource_tracking() -> None:
    """Detach this process from shared-memory resource tracking.

    Call once at the top of a *worker* entrypoint.  Forked workers share
    the driver's resource-tracker process, so their attach-time
    registrations and any cleanup messages race the driver's own
    bookkeeping for the very same segments (stdlib attach registers
    unconditionally before 3.13's ``track=False``).  Unlink is
    exclusively the publishing arena's job; workers only ever attach, so
    they have nothing legitimate to tell the tracker.
    """
    resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
    resource_tracker.unregister = lambda *a, **k: None  # type: ignore[assignment]


@dataclass(frozen=True)
class ShmRef:
    """Picklable descriptor of one published array.

    ``name`` is the shared-memory segment; ``shape``/``dtype`` rebuild
    the exact array view on the attaching side.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str


# Module-level accounting of every segment any arena currently owns, so a
# crashing driver still unlinks on interpreter exit (and tests can assert
# zero leaks).  Maps segment name -> SharedMemory handle.
_LIVE: dict[str, shared_memory.SharedMemory] = {}
_LIVE_LOCK = threading.Lock()


def _unlink_leftovers() -> None:  # pragma: no cover - crash path
    with _LIVE_LOCK:
        leftovers = list(_LIVE.values())
        _LIVE.clear()
    for shm in leftovers:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


atexit.register(_unlink_leftovers)


def live_segment_names() -> tuple[str, ...]:
    """Names of all segments currently owned by any open arena."""
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE))


class ShmArena:
    """Owns a set of refcounted shared-memory segments for one run.

    Use as a context manager (or call :meth:`close` in a ``finally``):
    the arena unlinks everything it published, exactly once, even when
    the run it served failed.

    Examples
    --------
    >>> import numpy as np
    >>> with ShmArena() as arena:
    ...     ref = arena.publish(np.arange(4))
    ...     cache = SegmentCache()
    ...     got = materialize(ref, cache)
    ...     int(got.sum())
    6
    >>> cache.close()
    >>> arena.n_segments
    0
    """

    def __init__(self) -> None:
        # name -> (handle, refcount); id(array) -> (array, ref) for
        # publish dedup.  The array object itself is pinned in the value:
        # keying on a bare id() would let a collected array's id be
        # recycled by a *different* array and falsely dedup to the wrong
        # segment.
        self._segments: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        self._by_array: dict[int, tuple[np.ndarray, ShmRef]] = {}
        self._closed = False

    # -- publishing ---------------------------------------------------------
    def publish(self, array: np.ndarray) -> ShmRef:
        """Copy *array* into a fresh segment (or bump an existing ref).

        The same array *object* published twice shares one segment; the
        copy happens only on first publish.
        """
        if self._closed:
            raise RuntimeError("arena is closed")
        arr = np.ascontiguousarray(array)
        key = id(array)
        entry = self._by_array.get(key)
        if entry is not None:
            _pinned, ref = entry
            shm, count = self._segments[ref.name]
            self._segments[ref.name] = (shm, count + 1)
            return ref
        # Zero-size arrays still need a valid (1-byte) segment to attach.
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes)
        )
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            del view
        ref = ShmRef(shm.name, tuple(arr.shape), arr.dtype.str)
        self._segments[shm.name] = (shm, 1)
        self._by_array[key] = (array, ref)
        with _LIVE_LOCK:
            _LIVE[shm.name] = shm
        return ref

    def share(self, obj):
        """Deep-swap every ndarray in *obj* for a :class:`ShmRef`.

        Recurses through dicts, lists, and tuples (the shapes plan shards
        and contexts actually take); scalars and other leaves pass
        through untouched, so the result pickles small.
        """
        if isinstance(obj, np.ndarray):
            return self.publish(obj)
        if isinstance(obj, dict):
            return {k: self.share(v) for k, v in obj.items()}
        if isinstance(obj, tuple):
            return tuple(self.share(v) for v in obj)
        if isinstance(obj, list):
            return [self.share(v) for v in obj]
        return obj

    # -- release ------------------------------------------------------------
    def release(self, ref: ShmRef) -> None:
        """Drop one reference to *ref*'s segment; unlink at zero."""
        entry = self._segments.get(ref.name)
        if entry is None:
            return
        shm, count = entry
        if count > 1:
            self._segments[ref.name] = (shm, count - 1)
            return
        del self._segments[ref.name]
        self._by_array = {
            k: (arr, r)
            for k, (arr, r) in self._by_array.items()
            if r.name != ref.name
        }
        self._unlink(shm)

    def close(self) -> None:
        """Unlink every segment the arena still owns (idempotent)."""
        if self._closed:
            return
        self._closed = True
        segments = [shm for shm, _count in self._segments.values()]
        self._segments.clear()
        self._by_array.clear()
        for shm in segments:
            self._unlink(shm)

    @staticmethod
    def _unlink(shm: shared_memory.SharedMemory) -> None:
        with _LIVE_LOCK:
            _LIVE.pop(shm.name, None)
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exported driver-side view
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    @property
    def n_segments(self) -> int:
        """Number of segments the arena currently owns."""
        return len(self._segments)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass


class SegmentCache:
    """Worker-side attachment cache: one map per segment per task.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory`
    handles alive while materialized arrays are in use; :meth:`close`
    releases the maps.  A segment whose buffer is still exported (a
    kernel returned a view into it) is skipped rather than raising — the
    OS reclaims the memory when the process drops the map.
    """

    def __init__(self) -> None:
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def get(self, ref: ShmRef) -> np.ndarray:
        """The array behind *ref*, as a zero-copy view over the segment."""
        shm = self._attached.get(ref.name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=ref.name)
            self._attached[ref.name] = shm
        return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)

    def close(self) -> None:
        """Release all attachments (idempotent, never raises)."""
        attached = list(self._attached.values())
        self._attached.clear()
        for shm in attached:
            try:
                shm.close()
            except BufferError:  # view still exported: let process exit reap
                pass


def materialize(obj, cache: SegmentCache):
    """Inverse of :meth:`ShmArena.share`: swap refs back into arrays."""
    if isinstance(obj, ShmRef):
        return cache.get(obj)
    if isinstance(obj, dict):
        return {k: materialize(v, cache) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(materialize(v, cache) for v in obj)
    if isinstance(obj, list):
        return [materialize(v, cache) for v in obj]
    return obj


# ---------------------------------------------------------------------------
# Output path: worker-published result segments, driver-claimed
# ---------------------------------------------------------------------------


def output_prefix(driver_pid: int | None = None) -> str:
    """Segment-name prefix under which one driver's outputs live.

    Every output segment a worker creates on behalf of driver *pid*
    starts with this prefix, so :func:`sweep_segments` can reclaim the
    orphans of a crashed worker without knowing how many it published.
    """
    pid = os.getpid() if driver_pid is None else int(driver_pid)
    return f"{_OUT_PREFIX}{pid}x"


class OutputWriter:
    """Worker-side publisher of kernel results into named segments.

    Each published array gets a fresh segment named
    ``<prefix><worker-pid>x<seq>`` — unique across pool respawns (a
    respawned worker has a new pid, so it can never collide with an
    orphan of its dead predecessor).  The writer closes its mapping
    before returning: the worker keeps nothing attached, and ownership
    passes to whichever driver claims the ref.

    Examples
    --------
    >>> import numpy as np
    >>> w = OutputWriter(output_prefix())
    >>> ref = w.publish(np.arange(3)[::-1])  # non-contiguous is fine
    >>> claim_output(ref)
    array([2, 1, 0])
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = f"{prefix}{os.getpid()}x"
        self._seq = 0

    def publish(self, array: np.ndarray) -> ShmRef:
        """Copy *array* into a fresh named segment; return its ref.

        Non-contiguous inputs are copied through ``ascontiguousarray``,
        so the materialized view always reproduces the original values.
        """
        arr = np.ascontiguousarray(array)
        name = f"{self.prefix}{self._seq}"
        self._seq += 1
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, arr.nbytes)
            )
        except FileExistsError:
            # An orphan of a dead predecessor that recycled our pid (or a
            # second writer in one process).  The name contract makes the
            # stale segment ours to reclaim.
            if _SHM_DIR.is_dir():
                (_SHM_DIR / name).unlink(missing_ok=True)
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, arr.nbytes)
            )
        try:
            if arr.nbytes:
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                del view
        finally:
            shm.close()
        return ShmRef(name, tuple(arr.shape), arr.dtype.str)

    def share(self, obj):
        """Deep-swap every ndarray in *obj* for a published ref."""
        if isinstance(obj, np.ndarray):
            return self.publish(obj)
        if isinstance(obj, dict):
            return {k: self.share(v) for k, v in obj.items()}
        if isinstance(obj, tuple):
            return tuple(self.share(v) for v in obj)
        if isinstance(obj, list):
            return [self.share(v) for v in obj]
        return obj


def claim_output(obj):
    """Driver-side inverse of :meth:`OutputWriter.share`: copy + unlink.

    Every ref is resolved into a private in-process copy and its segment
    unlinked immediately — after a claim, the result owns its memory and
    ``/dev/shm`` holds nothing for it.
    """
    if isinstance(obj, ShmRef):
        shm = shared_memory.SharedMemory(name=obj.name)
        try:
            arr = np.empty(obj.shape, dtype=np.dtype(obj.dtype))
            if arr.nbytes:
                view = np.ndarray(obj.shape, dtype=arr.dtype, buffer=shm.buf)
                arr[...] = view
                del view
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already swept
                pass
        return arr
    if isinstance(obj, dict):
        return {k: claim_output(v) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(claim_output(v) for v in obj)
    if isinstance(obj, list):
        return [claim_output(v) for v in obj]
    return obj


def discard_output(obj) -> None:
    """Unlink every output segment in *obj* without materializing it.

    For stale results of an aborted job: the data is unwanted, only the
    segments must go.  Missing segments (already swept) are fine.
    """
    if isinstance(obj, ShmRef):
        if _SHM_DIR.is_dir():
            (_SHM_DIR / obj.name).unlink(missing_ok=True)
        else:  # pragma: no cover - non-Linux fallback
            try:
                shm = shared_memory.SharedMemory(name=obj.name)
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
    elif isinstance(obj, dict):
        for v in obj.values():
            discard_output(v)
    elif isinstance(obj, (tuple, list)):
        for v in obj:
            discard_output(v)


def sweep_segments(prefix: str) -> tuple[str, ...]:
    """Unlink every ``/dev/shm`` segment whose name starts with *prefix*.

    The crash backstop of the output path: a worker killed between
    publishing and the driver's claim leaves orphans that nothing holds
    a ref to; the driver sweeps its own prefix after tearing the pool
    down.  Returns the names removed (for diagnostics and tests).
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return ()
    removed = []
    for path in _SHM_DIR.glob(f"{prefix}*"):
        try:
            path.unlink()
            removed.append(path.name)
        except OSError:  # pragma: no cover - raced by another unlink
            pass
    return tuple(sorted(removed))


def leaked_shm_files(
    prefixes: tuple[str, ...] = (_OUT_PREFIX, "psm_")
) -> tuple[str, ...]:
    """Segment files still present under ``/dev/shm`` (cross-process audit).

    Unlike :func:`live_segment_names` (this process's open arenas), this
    inspects the filesystem, so it sees leaks from *any* process —
    including dead workers.  CI asserts it is empty after the bench
    jobs; the default prefixes cover executor outputs (``rbo``) and
    stdlib-named arena segments (``psm_``), which assumes no unrelated
    shared-memory user on the host.
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return ()
    return tuple(
        sorted(
            p.name
            for p in _SHM_DIR.iterdir()
            if p.name.startswith(tuple(prefixes))
        )
    )
