"""Execution plans: declarative kernel-stage pipelines.

A :class:`Plan` names a map stage (run once per shard) and an optional
reduce stage (run once, driver-side, over the gathered partials), each a
:class:`KernelStage` referencing its kernel by a stable ``module:attr``
string.  String references — not callables — are the load-bearing
choice: they make a plan picklable, so the *same* plan object runs
in-process through :class:`~repro.exec.executors.SerialExecutor` or
across YGM ranks (including forked worker processes) through
:class:`~repro.exec.executors.YgmExecutor` without translation.

Calling convention (enforced by the executors):

- map kernel: ``fn(shard, context) -> partial``
- reduce kernel: ``fn(partials, context) -> result`` where ``partials``
  is ordered by shard index regardless of executor or rank interleaving.

``shard_key`` documents the partitioning dimension a stage's shards are
cut along (``"page"``, ``"wedge_range"``, ``"triplet_range"``, …); the
executors carry it into diagnostics so a mis-sharded plan is visible.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

__all__ = ["KernelStage", "Plan", "resolve_kernel"]


def resolve_kernel(ref: str) -> Callable:
    """Resolve a ``"module:attr"`` kernel reference to the callable."""
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"kernel reference must look like 'module:attr', got {ref!r}"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(
            f"kernel reference {ref!r} names no attribute of {module_name}"
        ) from exc


@dataclass(frozen=True)
class KernelStage:
    """One stage of a plan: a named kernel plus its shard dimension."""

    name: str
    kernel: str  # "module:attr" reference, resolved lazily per executor/rank
    shard_key: str | None = None

    def __post_init__(self) -> None:
        if ":" not in self.kernel:
            raise ValueError(
                f"stage {self.name!r}: kernel must be a 'module:attr' "
                f"reference, got {self.kernel!r}"
            )

    def resolve(self) -> Callable:
        """The stage's kernel callable."""
        return resolve_kernel(self.kernel)


@dataclass(frozen=True)
class Plan:
    """A named map(+reduce) pipeline over kernel stages.

    Examples
    --------
    >>> plan = Plan(
    ...     name="demo",
    ...     map_stage=KernelStage(
    ...         "square", "repro.exec.plans:_demo_square", shard_key="item"
    ...     ),
    ...     reduce_stage=KernelStage("sum", "repro.exec.plans:_demo_sum"),
    ... )
    >>> from repro.exec import SerialExecutor
    >>> SerialExecutor().run(plan, [1, 2, 3])
    14
    """

    name: str
    map_stage: KernelStage
    reduce_stage: KernelStage | None = None

    @property
    def stages(self) -> tuple[KernelStage, ...]:
        """All stages in execution order."""
        if self.reduce_stage is None:
            return (self.map_stage,)
        return (self.map_stage, self.reduce_stage)

    def describe(self) -> str:
        """One-line summary for logs and diagnostics."""
        parts = [
            f"{s.name}[{s.shard_key or 'global'}]={s.kernel}"
            for s in self.stages
        ]
        return f"plan {self.name}: " + " -> ".join(parts)
