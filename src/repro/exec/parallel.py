"""Shared-memory parallel executor: one plan, many cores, zero copies.

:class:`ParallelExecutor` is the third executor of the plan layer.  Like
:class:`~repro.exec.executors.SerialExecutor` it maps every shard through
the plan's kernel and reduces driver-side in shard order, so results are
bit-identical by construction; unlike it, shards run on a **persistent
pool of worker processes** that stays warm across plans — the pipeline
runs projection, survey, and validation through one pool.

Data movement is the design center, in both directions:

- Inputs travel through :class:`~repro.exec.shm.ShmArena`: every shard
  and context array is published once into ``/dev/shm`` and dispatched
  as a tiny :class:`~repro.exec.shm.ShmRef`; workers map the segments
  read-only-in-spirit (no copy).
- Dispatch is **batched**: each worker receives *one* queue item per
  job carrying its whole ``(index, shard_refs)`` task list, so queue
  traffic is per-worker, not per-shard, and the worker resolves the
  plan's ``"module:attr"`` kernel ref and materializes the shared
  context once per job instead of once per shard.
- Outputs travel through shared memory too: workers publish result
  arrays into per-worker output segments
  (:class:`~repro.exec.shm.OutputWriter`) and send back only tiny ref
  descriptors; the driver claims each result as it arrives
  (:func:`~repro.exec.shm.claim_output` — copy out, unlink), overlapping
  its copies with the workers' remaining compute.  Nothing large is ever
  pickled through a pipe.

Failure semantics reuse the YGM taxonomy end to end
(:mod:`repro.ygm.errors`): a kernel that raises surfaces as
:class:`~repro.ygm.errors.HandlerError`; a worker that dies is detected
by liveness polling and raised as
:class:`~repro.ygm.errors.WorkerDiedError`; a configured ``deadline``
turns a hang into :class:`~repro.ygm.errors.BarrierTimeoutError`.  A
:class:`~repro.ygm.faults.FaultPlan` may be injected at construction.
Although a whole batch arrives as one queue item, the injector's clock
still ticks **once per task** inside the batch, so fault plans keyed on
per-rank delivered-message counts replay exactly as they did under
per-shard dispatch (and as they do on the YGM backend).

Pool lifecycle is defensive about the failure residue of earlier runs:
``run`` respawns the pool when *any* worker has died since the last run
(an OOM-killed worker must not quietly swallow its round-robin share of
the next job), and a job aborted by a typed failure is flushed — a
shared job-generation cell makes workers skip leftover tasks of dead
jobs without ever touching their (already unlinked) input arena, and the
driver discards stale published outputs the moment it sees them.  After
any typed failure requiring teardown, the same bounded escalation ladder
as the YGM backend applies (STOP → join deadline → terminate → kill,
queues closed) followed by a sweep of orphaned output segments; shutdown
leaks neither children nor ``/dev/shm`` segments.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
from typing import Any, Sequence

from repro.exec.executors import finish_reduce
from repro.exec.plan import Plan, resolve_kernel
from repro.exec.shm import (
    OutputWriter,
    SegmentCache,
    ShmArena,
    claim_output,
    disown_resource_tracking,
    discard_output,
    materialize,
    output_prefix,
    sweep_segments,
)
from repro.ygm.errors import (
    BarrierTimeoutError,
    HandlerError,
    WorkerDiedError,
)
from repro.ygm.faults import HANG_SECONDS, FaultInjector, FaultPlan

__all__ = ["ParallelExecutor"]

_STOP = None

#: Job-generation value meaning "no job is live" (workers skip tasks).
_NO_JOB = 0


def _pool_worker(
    rank: int, task_queue, result_queue, fault_plan, live_job, out_prefix
) -> None:
    """Worker loop: drain batched jobs until STOP.

    One queue item carries one job's whole task list for this worker.
    The kernel ref is resolved and the context materialized once per
    batch; the fault injector ticks once per *task* so message-count
    fault plans are batching-invariant.  Kernel exceptions are reported,
    not fatal: the worker stays alive for the next job (mirroring the
    YGM handler-error contract).  Tasks whose job is no longer the live
    one (the driver aborted it) are skipped without attaching to the
    input arena — its segments are already unlinked.
    """
    disown_resource_tracking()
    injector = (
        FaultInjector(fault_plan, rank) if fault_plan is not None else None
    )
    writer = OutputWriter(out_prefix)
    while True:
        item = task_queue.get()
        if item is _STOP:
            return
        job_id, kernel_ref, context_refs, tasks = item
        kernel = None
        context = None
        have_context = False
        cache = SegmentCache()
        try:
            for index, shard_refs in tasks:
                fault = injector.next_fault() if injector is not None else None
                if fault is not None:
                    if fault.kind == "crash":
                        os.kill(os.getpid(), signal.SIGKILL)
                    elif fault.kind == "hang":
                        time.sleep(HANG_SECONDS)
                    elif fault.kind == "delay":
                        time.sleep(fault.seconds)
                    elif fault.kind == "raise":
                        result_queue.put(
                            (rank, job_id, index, False,
                             f"injected fault: {fault.describe()}")
                        )
                        continue
                if job_id != live_job.value:  # aborted job: flush, don't churn
                    continue
                try:
                    if kernel is None:
                        kernel = resolve_kernel(kernel_ref)
                    if not have_context:
                        context = materialize(context_refs, cache)
                        have_context = True
                    shard = materialize(shard_refs, cache)
                    payload = writer.share(kernel(shard, context))
                    del shard
                except Exception as exc:
                    result_queue.put(
                        (rank, job_id, index, False, f"{kernel_ref}: {exc!r}")
                    )
                    continue
                result_queue.put((rank, job_id, index, True, payload))
        finally:
            del context
            cache.close()


class ParallelExecutor:
    """Run plans across a persistent pool of worker processes.

    Parameters
    ----------
    n_workers:
        Pool size; ``None`` uses ``os.cpu_count()``.
    fault_plan:
        Optional :class:`~repro.ygm.faults.FaultPlan`; the per-worker
        delivered-*task* count is the message clock (batching does not
        coarsen it).
    deadline:
        Seconds one ``run`` may wait on outstanding shards before raising
        :class:`~repro.ygm.errors.BarrierTimeoutError`.  ``None`` waits
        forever — dead workers are still detected by liveness polling;
        the deadline exists to catch hangs.
    start_method:
        ``multiprocessing`` start method (default ``"fork"``, matching
        the YGM backend).

    Examples
    --------
    >>> from repro.exec import PROJECTION_PLAN  # doctest: +SKIP
    >>> with ParallelExecutor(4) as ex:  # doctest: +SKIP
    ...     red = ex.run(PROJECTION_PLAN, shards, context)
    """

    #: Seconds between result-queue polls (each poll re-checks liveness).
    _QUEUE_POLL = 0.05

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        deadline: float | None = None,
        start_method: str = "fork",
        join_deadline: float = 5.0,
    ) -> None:
        self.n_workers = max(1, int(n_workers or os.cpu_count() or 1))
        self.deadline = deadline
        self.join_deadline = float(join_deadline)
        self._fault_plan = fault_plan if fault_plan else None
        self._ctx = mp.get_context(start_method)
        self._workers: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._live_job = None
        self._job_id = 0
        self._out_prefix = output_prefix()

    # -- pool lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether a worker pool is currently running, all workers live."""
        return bool(self._workers) and all(w.is_alive() for w in self._workers)

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the live pool (spawning it if needed); for diagnostics."""
        self._ensure_pool()
        return tuple(w.pid for w in self._workers)

    def _ensure_pool(self) -> None:
        if self._workers:
            if self.alive:
                return
            # A quietly-dead worker (e.g. OOM-killed between runs) would
            # swallow its round-robin share of the next job forever with
            # no deadline set; reap the remnant pool and start fresh.
            self.shutdown()
        self._task_queues = [self._ctx.Queue() for _ in range(self.n_workers)]
        self._result_queue = self._ctx.Queue()
        # Plain shared int64, no lock: single writer (the driver), and
        # readers only compare against a value they were handed — a stale
        # read merely delays a flush by one task.
        self._live_job = self._ctx.Value("q", _NO_JOB, lock=False)
        self._workers = [
            self._ctx.Process(
                target=_pool_worker,
                args=(rank, self._task_queues[rank], self._result_queue,
                      self._fault_plan, self._live_job, self._out_prefix),
                daemon=True,
            )
            for rank in range(self.n_workers)
        ]
        for w in self._workers:
            w.start()

    def shutdown(self) -> None:
        """Tear the pool down in bounded time, never raising, never leaking.

        Same escalation ladder as the YGM multiprocessing backend: STOP to
        every queue → shared join deadline → terminate → kill → close
        queues — then sweep any output segments the dead workers left
        unclaimed.  Idempotent; ``run`` respawns a fresh pool afterwards.
        """
        if not self._workers:
            return
        if self._live_job is not None:
            self._live_job.value = _NO_JOB
        workers, self._workers = self._workers, []
        for q in self._task_queues:
            try:
                q.put_nowait(_STOP)
            except Exception:  # full/broken queue: escalation handles it
                pass
        self._join_all(workers, self.join_deadline)
        for w in workers:
            if w.is_alive():
                w.terminate()
        self._join_all(workers, 1.0)
        for w in workers:
            if w.is_alive():  # pragma: no cover - needs SIGTERM-immune worker
                try:
                    w.kill()
                except Exception:
                    pass
        self._join_all(workers, 1.0)
        queues = [*self._task_queues, self._result_queue]
        self._task_queues = []
        self._result_queue = None
        self._live_job = None
        for q in queues:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - defensive
                pass
        # Workers are gone: anything still under this driver's output
        # prefix was published but never claimed (aborted job, crash
        # between publish and report) and has no owner left.
        sweep_segments(self._out_prefix)

    close = shutdown

    @staticmethod
    def _join_all(workers, deadline: float) -> None:
        limit = time.monotonic() + deadline
        while any(w.is_alive() for w in workers):
            if time.monotonic() > limit:
                return
            time.sleep(0.01)
        for w in workers:
            w.join(timeout=0)

    def __enter__(self) -> "ParallelExecutor":
        self._ensure_pool()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.shutdown()
        except Exception:
            pass

    # -- execution ----------------------------------------------------------
    def run(self, plan: Plan, shards: Sequence[Any], context: Any = None) -> Any:
        """Map shards over the pool, reduce driver-side in shard order.

        Shard *i* belongs to worker ``i % n_workers`` (deterministic
        round-robin); each worker receives its whole task list as one
        batched queue item.  Inputs ride through a per-run
        :class:`~repro.exec.shm.ShmArena`, outputs come back through
        per-worker output segments; the reduce stage sees the original
        context object, exactly as under ``SerialExecutor``.
        """
        shards = list(shards)
        if not shards:
            partials: list[Any] = []
        else:
            self._ensure_pool()
            self._job_id += 1
            self._live_job.value = self._job_id
            try:
                with ShmArena() as arena:
                    context_refs = arena.share(context)
                    kernel_ref = plan.map_stage.kernel
                    batches: list[list] = [[] for _ in range(self.n_workers)]
                    for index, shard in enumerate(shards):
                        batches[index % self.n_workers].append(
                            (index, arena.share(shard))
                        )
                    for rank, tasks in enumerate(batches):
                        if tasks:
                            self._task_queues[rank].put(
                                (self._job_id, kernel_ref, context_refs, tasks)
                            )
                    partials = self._gather(len(shards))
            except BaseException:
                # Flush the aborted job: workers skip its leftover tasks
                # (never attaching to the now-unlinked arena) instead of
                # churning through attach failures.
                if self._live_job is not None:
                    self._live_job.value = _NO_JOB
                raise
        return finish_reduce(plan, partials, context)

    def _gather(self, n_shards: int) -> list[Any]:
        """Collect one result per dispatched shard, typed-failing fast.

        Results are claimed (copied out of shared memory, segments
        unlinked) as they arrive, so driver-side copies overlap worker
        compute and no segment outlives its consumption.
        """
        results: list[Any] = [None] * n_shards
        pending = n_shards
        limit = (
            time.monotonic() + self.deadline
            if self.deadline is not None
            else None
        )
        while pending:
            if limit is not None and time.monotonic() > limit:
                self.shutdown()
                raise BarrierTimeoutError(self.deadline, pending, phase="gather")
            try:
                rank, job_id, index, ok, value = self._result_queue.get(
                    timeout=self._QUEUE_POLL
                )
            except queue_mod.Empty:
                self._check_liveness(pending)
                continue
            if job_id != self._job_id:  # stale result from an aborted job
                if ok:
                    discard_output(value)
                continue
            if not ok:
                # The worker survives a kernel failure (YGM handler-error
                # contract), so the pool stays up: leftover tasks of this
                # aborted job are flushed via the live-job cell, stale
                # results it already published are discarded above.  Only
                # death and timeout tear the pool down.
                raise HandlerError(rank, value)
            results[index] = claim_output(value)
            pending -= 1
        return results

    def _check_liveness(self, pending: int) -> None:
        for rank, w in enumerate(self._workers):
            if not w.is_alive():
                exitcode = w.exitcode
                self.shutdown()
                raise WorkerDiedError(rank, exitcode, pending, phase="gather")
