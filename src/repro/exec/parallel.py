"""Shared-memory parallel executor: one plan, many cores, zero copies.

:class:`ParallelExecutor` is the third executor of the plan layer.  Like
:class:`~repro.exec.executors.SerialExecutor` it maps every shard through
the plan's kernel and reduces driver-side in shard order, so results are
bit-identical by construction; unlike it, shards run on a **persistent
pool of worker processes** that stays warm across plans — the pipeline
runs projection, survey, and validation through one pool.

Data movement is the design center:

- Inputs travel through :class:`~repro.exec.shm.ShmArena`: every shard
  and context array is published once into ``/dev/shm`` and dispatched
  as a tiny :class:`~repro.exec.shm.ShmRef`; workers map the segments
  read-only-in-spirit (no copy) and resolve the same ``"module:attr"``
  kernel refs every executor uses.
- Outputs are pickled *inside the worker* before its segment maps are
  released (a :class:`multiprocessing.Queue` pickles lazily on a feeder
  thread, which would race the unmap), then gathered and re-ordered by
  shard index on the driver.

Failure semantics reuse the YGM taxonomy end to end
(:mod:`repro.ygm.errors`): a kernel that raises surfaces as
:class:`~repro.ygm.errors.HandlerError`; a worker that dies is detected
by liveness polling and raised as
:class:`~repro.ygm.errors.WorkerDiedError`; a configured ``deadline``
turns a hang into :class:`~repro.ygm.errors.BarrierTimeoutError`.  A
:class:`~repro.ygm.faults.FaultPlan` may be injected at construction —
faults fire at **shard dispatch** (the per-worker delivered-task count is
the message clock), so the failure-matrix rehearsals from the YGM
runtime apply unchanged.  After any typed failure the pool is torn down
with the same bounded escalation ladder the YGM backend uses (STOP →
join deadline → terminate → kill, queues closed) and is respawned
lazily on the next ``run``; shutdown leaks neither children nor
``/dev/shm`` segments.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import signal
import time
from typing import Any, Sequence

from repro.exec.plan import Plan, resolve_kernel
from repro.exec.shm import (
    SegmentCache,
    ShmArena,
    disown_resource_tracking,
    materialize,
)
from repro.ygm.errors import (
    BarrierTimeoutError,
    HandlerError,
    WorkerDiedError,
)
from repro.ygm.faults import HANG_SECONDS, FaultInjector, FaultPlan

__all__ = ["ParallelExecutor"]

_STOP = None


def _run_task(kernel_ref: str, shard, context, cache: SegmentCache) -> bytes:
    """Materialize one task's inputs, run the kernel, pickle the result.

    Pickling happens *here*, before the caller releases the segment
    cache, so the returned bytes never reference shared memory.
    """
    shard = materialize(shard, cache)
    context = materialize(context, cache)
    return pickle.dumps(resolve_kernel(kernel_ref)(shard, context))


def _pool_worker(rank: int, task_queue, result_queue, fault_plan) -> None:
    """Worker loop: drain dispatched shards until STOP.

    Kernel exceptions are reported, not fatal: the worker stays alive for
    the next job (mirroring the YGM handler-error contract).  Faults from
    an injected plan manifest exactly as on the YGM multiprocessing
    backend: ``crash`` SIGKILLs the process, ``hang`` stalls inside the
    task, ``delay`` sleeps then proceeds, ``raise`` reports a typed
    handler failure.
    """
    disown_resource_tracking()
    injector = (
        FaultInjector(fault_plan, rank) if fault_plan is not None else None
    )
    while True:
        item = task_queue.get()
        if item is _STOP:
            return
        job_id, index, kernel_ref, shard, context = item
        fault = injector.next_fault() if injector is not None else None
        if fault is not None:
            if fault.kind == "crash":
                os.kill(os.getpid(), signal.SIGKILL)
            elif fault.kind == "hang":
                time.sleep(HANG_SECONDS)
            elif fault.kind == "delay":
                time.sleep(fault.seconds)
            elif fault.kind == "raise":
                result_queue.put(
                    (rank, job_id, index, False,
                     f"injected fault: {fault.describe()}")
                )
                continue
        cache = SegmentCache()
        try:
            payload = _run_task(kernel_ref, shard, context, cache)
        except Exception as exc:
            result_queue.put(
                (rank, job_id, index, False, f"{kernel_ref}: {exc!r}")
            )
            continue
        finally:
            del shard, context  # drop segment views before releasing maps
            cache.close()
        result_queue.put((rank, job_id, index, True, payload))


class ParallelExecutor:
    """Run plans across a persistent pool of worker processes.

    Parameters
    ----------
    n_workers:
        Pool size; ``None`` uses ``os.cpu_count()``.
    fault_plan:
        Optional :class:`~repro.ygm.faults.FaultPlan`; the per-worker
        delivered-shard count is the message clock.
    deadline:
        Seconds one ``run`` may wait on outstanding shards before raising
        :class:`~repro.ygm.errors.BarrierTimeoutError`.  ``None`` waits
        forever — dead workers are still detected by liveness polling;
        the deadline exists to catch hangs.
    start_method:
        ``multiprocessing`` start method (default ``"fork"``, matching
        the YGM backend).

    Examples
    --------
    >>> from repro.exec import PROJECTION_PLAN  # doctest: +SKIP
    >>> with ParallelExecutor(4) as ex:  # doctest: +SKIP
    ...     red = ex.run(PROJECTION_PLAN, shards, context)
    """

    #: Seconds between result-queue polls (each poll re-checks liveness).
    _QUEUE_POLL = 0.05

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        deadline: float | None = None,
        start_method: str = "fork",
        join_deadline: float = 5.0,
    ) -> None:
        self.n_workers = max(1, int(n_workers or os.cpu_count() or 1))
        self.deadline = deadline
        self.join_deadline = float(join_deadline)
        self._fault_plan = fault_plan if fault_plan else None
        self._ctx = mp.get_context(start_method)
        self._workers: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._job_id = 0

    # -- pool lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether a worker pool is currently running."""
        return bool(self._workers) and all(w.is_alive() for w in self._workers)

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the live pool (spawning it if needed); for diagnostics."""
        self._ensure_pool()
        return tuple(w.pid for w in self._workers)

    def _ensure_pool(self) -> None:
        if self._workers:
            return
        self._task_queues = [self._ctx.Queue() for _ in range(self.n_workers)]
        self._result_queue = self._ctx.Queue()
        self._workers = [
            self._ctx.Process(
                target=_pool_worker,
                args=(rank, self._task_queues[rank], self._result_queue,
                      self._fault_plan),
                daemon=True,
            )
            for rank in range(self.n_workers)
        ]
        for w in self._workers:
            w.start()

    def shutdown(self) -> None:
        """Tear the pool down in bounded time, never raising, never leaking.

        Same escalation ladder as the YGM multiprocessing backend: STOP to
        every queue → shared join deadline → terminate → kill → close
        queues.  Idempotent; ``run`` respawns a fresh pool afterwards.
        """
        if not self._workers:
            return
        workers, self._workers = self._workers, []
        for q in self._task_queues:
            try:
                q.put_nowait(_STOP)
            except Exception:  # full/broken queue: escalation handles it
                pass
        self._join_all(workers, self.join_deadline)
        for w in workers:
            if w.is_alive():
                w.terminate()
        self._join_all(workers, 1.0)
        for w in workers:
            if w.is_alive():  # pragma: no cover - needs SIGTERM-immune worker
                try:
                    w.kill()
                except Exception:
                    pass
        self._join_all(workers, 1.0)
        queues = [*self._task_queues, self._result_queue]
        self._task_queues = []
        self._result_queue = None
        for q in queues:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - defensive
                pass

    close = shutdown

    @staticmethod
    def _join_all(workers, deadline: float) -> None:
        limit = time.monotonic() + deadline
        while any(w.is_alive() for w in workers):
            if time.monotonic() > limit:
                return
            time.sleep(0.01)
        for w in workers:
            w.join(timeout=0)

    def __enter__(self) -> "ParallelExecutor":
        self._ensure_pool()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.shutdown()
        except Exception:
            pass

    # -- execution ----------------------------------------------------------
    def run(self, plan: Plan, shards: Sequence[Any], context: Any = None) -> Any:
        """Map shards over the pool, reduce driver-side in shard order.

        Shard *i* is dispatched to worker ``i % n_workers`` (deterministic
        round-robin, so fault plans keyed on per-rank delivery counts
        replay exactly).  Inputs ride through a per-run
        :class:`~repro.exec.shm.ShmArena`; the reduce stage sees the
        original context object, exactly as under ``SerialExecutor``.
        """
        shards = list(shards)
        if not shards:
            partials: list[Any] = []
        else:
            self._ensure_pool()
            self._job_id += 1
            with ShmArena() as arena:
                context_refs = arena.share(context)
                for index, shard in enumerate(shards):
                    self._task_queues[index % self.n_workers].put(
                        (self._job_id, index, plan.map_stage.kernel,
                         arena.share(shard), context_refs)
                    )
                partials = self._gather(len(shards))
        if plan.reduce_stage is None:
            return partials
        return plan.reduce_stage.resolve()(partials, context)

    def _gather(self, n_shards: int) -> list[Any]:
        """Collect one result per dispatched shard, typed-failing fast."""
        results: list[Any] = [None] * n_shards
        pending = n_shards
        limit = (
            time.monotonic() + self.deadline
            if self.deadline is not None
            else None
        )
        while pending:
            if limit is not None and time.monotonic() > limit:
                self.shutdown()
                raise BarrierTimeoutError(self.deadline, pending, phase="gather")
            try:
                rank, job_id, index, ok, value = self._result_queue.get(
                    timeout=self._QUEUE_POLL
                )
            except queue_mod.Empty:
                self._check_liveness(pending)
                continue
            if job_id != self._job_id:  # stale result from an aborted job
                continue
            if not ok:
                # The worker survives a kernel failure (YGM handler-error
                # contract), so the pool stays up: late results of this
                # aborted job are skipped by the stale-job-id guard above,
                # and a worker that trips over the closed arena reports —
                # not dies.  Only death and timeout tear the pool down.
                raise HandlerError(rank, value)
            results[index] = pickle.loads(value)
            pending -= 1
        return results

    def _check_liveness(self, pending: int) -> None:
        for rank, w in enumerate(self._workers):
            if not w.is_alive():
                exitcode = w.exitcode
                self.shutdown()
                raise WorkerDiedError(rank, exitcode, pending, phase="gather")
