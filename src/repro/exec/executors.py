"""Executors: run one :class:`~repro.exec.plan.Plan` locally or over YGM.

Both executors honor the same contract — map every shard through the
plan's map kernel, order the partials by shard index, then run the
optional reduce kernel driver-side — so an engine written against
``executor.run(plan, shards, context)`` is backend-agnostic by
construction.  That symmetry is what the cross-engine parity harness
leans on: serial vs distributed runs differ only in *where* map shards
execute, never in *what* executes.

:class:`YgmExecutor` scatters ``(index, shard)`` items into a
:class:`~repro.ygm.containers.bag.DistBag` and maps them with
``DistBag.map_gather``, which ships the kernel reference and context
once per rank (not once per shard).  The map function travels as a plain
module-level callable — pickled by reference and re-imported on the
worker — so it resolves even on worker processes forked before
:mod:`repro.exec` was first imported.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.exec.plan import Plan, resolve_kernel

__all__ = ["SerialExecutor", "YgmExecutor", "finish_reduce"]


def _map_item(ctx, item, kernel_ref: str, context) -> tuple[int, Any]:
    """Per-item map shim run on whichever rank holds the bag item.

    ``item`` is ``(index, shard)``; the index rides along so the driver
    can restore shard order after the unordered gather.
    """
    index, shard = item
    return index, resolve_kernel(kernel_ref)(shard, context)


def finish_reduce(plan: Plan, partials: list[Any], context) -> Any:
    """The shared gather/reduce tail every executor ends a run with.

    ``partials`` must already be ordered by shard index; the reduce
    kernel sees the caller's original context object.  Centralizing this
    is what makes "bit-identical across executors" true by construction:
    backends may differ in where map shards run, never in how the
    partials are folded.
    """
    if plan.reduce_stage is None:
        return partials
    return plan.reduce_stage.resolve()(partials, context)


class SerialExecutor:
    """Run a plan in-process, one shard at a time, in shard order."""

    def run(self, plan: Plan, shards: Sequence[Any], context: Any = None) -> Any:
        """Map every shard through the plan, then reduce driver-side."""
        kernel = plan.map_stage.resolve()
        partials = [kernel(shard, context) for shard in shards]
        return finish_reduce(plan, partials, context)


class YgmExecutor:
    """Run a plan's map stage across the ranks of a YGM world.

    The world is borrowed, not owned: the caller controls its lifetime
    (and its backend/fault plan), so one world can execute many plans —
    the pipeline's distributed path runs projection, survey, and
    validation plans through a single world.
    """

    def __init__(self, world) -> None:
        self.world = world

    def run(self, plan: Plan, shards: Sequence[Any], context: Any = None) -> Any:
        """Scatter shards over ranks, map remotely, reduce driver-side."""
        from repro.ygm.containers.bag import DistBag

        bag = DistBag(self.world)
        try:
            # One message per shard (not one batch per rank): keeps the
            # per-rank delivery stream fine-grained, so fault plans keyed
            # on message counts retain a realistic injection surface.
            for item in enumerate(shards):
                bag.async_insert(item)
            self.world.barrier()
            gathered = bag.map_gather(_map_item, plan.map_stage.kernel, context)
        finally:
            bag.release()
        gathered.sort(key=lambda pair: pair[0])
        partials = [partial for _index, partial in gathered]
        return finish_reduce(plan, partials, context)
