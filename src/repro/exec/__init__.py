"""Execution-plan layer: one plan, three executors.

Engines declare *what* runs — a :class:`~repro.exec.plan.Plan` of kernel
stages with declared shard keys — and pick *where* it runs by choosing a
:class:`~repro.exec.executors.SerialExecutor` (in-process), a
:class:`~repro.exec.parallel.ParallelExecutor` (persistent worker pool
over shared-memory inputs), or a
:class:`~repro.exec.executors.YgmExecutor` (across YGM ranks).  The
canonical plans for the paper's three steps live in
:mod:`repro.exec.plans`.
"""

from repro.exec.executors import SerialExecutor, YgmExecutor, finish_reduce
from repro.exec.parallel import ParallelExecutor
from repro.exec.plan import KernelStage, Plan, resolve_kernel
from repro.exec.plans import (
    PROJECTION_PLAN,
    SURVEY_PLAN,
    VALIDATION_PLAN,
    adaptive_shard_count,
    page_aligned_shards,
    position_range_shards,
    triplet_range_shards,
)
from repro.exec.shm import ShmArena, leaked_shm_files, live_segment_names

__all__ = [
    "KernelStage",
    "Plan",
    "resolve_kernel",
    "SerialExecutor",
    "ParallelExecutor",
    "YgmExecutor",
    "finish_reduce",
    "ShmArena",
    "live_segment_names",
    "leaked_shm_files",
    "PROJECTION_PLAN",
    "SURVEY_PLAN",
    "VALIDATION_PLAN",
    "adaptive_shard_count",
    "page_aligned_shards",
    "position_range_shards",
    "triplet_range_shards",
]
