"""Execution-plan layer: one plan, two executors.

Engines declare *what* runs — a :class:`~repro.exec.plan.Plan` of kernel
stages with declared shard keys — and pick *where* it runs by choosing a
:class:`~repro.exec.executors.SerialExecutor` (in-process) or
:class:`~repro.exec.executors.YgmExecutor` (across YGM ranks).  The
canonical plans for the paper's three steps live in
:mod:`repro.exec.plans`.
"""

from repro.exec.executors import SerialExecutor, YgmExecutor
from repro.exec.plan import KernelStage, Plan, resolve_kernel
from repro.exec.plans import (
    PROJECTION_PLAN,
    SURVEY_PLAN,
    VALIDATION_PLAN,
    page_aligned_shards,
    position_range_shards,
    triplet_range_shards,
)

__all__ = [
    "KernelStage",
    "Plan",
    "resolve_kernel",
    "SerialExecutor",
    "YgmExecutor",
    "PROJECTION_PLAN",
    "SURVEY_PLAN",
    "VALIDATION_PLAN",
    "page_aligned_shards",
    "position_range_shards",
    "triplet_range_shards",
]
