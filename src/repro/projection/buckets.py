"""Time-bucketed projection (paper §3's memory workaround).

A wide window ``(0, 1 hr)`` materializes far more candidate pairs at once
than ``(0, 60 s)``.  The paper proposes projecting a sequence of narrow
buckets ``{(0, 60 s), (60 s, 120 s), …}`` and "merging these projected
graphs together at the end".

Merging needs care: ``w'_{xy}`` counts *pages*, so a pair co-commenting on
the same page with delays in two different buckets must still contribute
**one** to the merged weight.  Naively summing per-bucket edge weights
over-counts such pages.  This module implements both:

- ``merge="exact"`` (default) — unions the distinct ``(page, x, y)``
  observations across buckets before reducing, which is provably equal to
  the direct wide-window projection (the union of the buckets' delay
  intervals is the full window, and triples are deduplicated);
- ``merge="sum"`` — the naive weight sum, kept for the ablation that
  quantifies the over-count.

Buckets *partition* the window's integer delay space
(:meth:`~repro.projection.window.TimeWindow.buckets` makes intervals past
the first half-open), so a pair at a boundary delay is observed by exactly
one bucket: ``pair_observations`` adds up exactly and the ``merge="sum"``
over-count is purely the documented multi-bucket page effect.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.graph.edgelist import EdgeList
from repro.projection.ci_graph import CommonInteractionGraph
from repro.kernels import merge_triples
from repro.projection.project import (
    ProjectionResult,
    project,
    reduce_triples_to_ci,
)
from repro.projection.window import TimeWindow
from repro.util.timers import StageTimings

__all__ = ["project_bucketed"]


def project_bucketed(
    btm: BipartiteTemporalMultigraph,
    window: TimeWindow,
    bucket_width: int,
    merge: str = "exact",
    pair_batch: int = 4_000_000,
    keep_triples: bool = False,
) -> ProjectionResult:
    """Project *window* as a merge of consecutive ``bucket_width`` sub-windows.

    With ``merge="exact"`` the result equals ``project(btm, window)``
    exactly (asserted by property tests); peak memory is governed by the
    largest single bucket instead of the whole window.

    Examples
    --------
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p", 0), ("b", "p", 50), ("c", "p", 110)]
    ... )
    >>> direct = project(btm, TimeWindow(0, 120))
    >>> bucketed = project_bucketed(btm, TimeWindow(0, 120), bucket_width=60)
    >>> bucketed.ci.edges.to_dict() == direct.ci.edges.to_dict()
    True
    """
    if merge not in ("exact", "sum"):
        raise ValueError(f"merge must be 'exact' or 'sum', got {merge!r}")
    buckets = window.buckets(bucket_width)
    timings = StageTimings()

    if merge == "exact":
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        pair_observations = 0
        for bucket in buckets:
            with timings.stage(f"bucket {bucket}"):
                sub = project(
                    btm, bucket, pair_batch=pair_batch, keep_triples=True
                )
            assert sub.triples is not None
            parts.append(sub.triples)
            pair_observations += sub.stats["pair_observations"]
        with timings.stage("merge"):
            pg, a, b = merge_triples(parts)
            ci = reduce_triples_to_ci(
                pg, a, b, btm.user_id_space, window, btm.user_names
            )
        return ProjectionResult(
            ci=ci,
            triples=(pg, a, b) if keep_triples else None,
            stats={
                "comments_scanned": btm.n_comments,
                "buckets": len(buckets),
                "pair_observations": pair_observations,
                "distinct_page_pairs": int(pg.shape[0]),
                "ci_edges": ci.edges.n_edges,
            },
            timings=timings,
        )

    # merge == "sum": the naive merge the ablation quantifies.
    merged = EdgeList.empty()
    page_counts = np.zeros(btm.user_id_space, dtype=np.int64)
    pair_observations = 0
    for bucket in buckets:
        with timings.stage(f"bucket {bucket}"):
            sub = project(btm, bucket, pair_batch=pair_batch)
        merged = merged.concat(sub.ci.edges)
        page_counts += sub.ci.page_counts
        pair_observations += sub.stats["pair_observations"]
    merged = merged.accumulate()
    ci = CommonInteractionGraph(
        edges=merged,
        page_counts=page_counts,
        window=window,
        user_names=btm.user_names,
    )
    return ProjectionResult(
        ci=ci,
        stats={
            "comments_scanned": btm.n_comments,
            "buckets": len(buckets),
            "pair_observations": pair_observations,
            "ci_edges": merged.n_edges,
        },
        timings=timings,
    )
