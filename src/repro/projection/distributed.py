"""Distributed projection on the YGM runtime (how the paper runs Step 1).

This engine executes the *same* :data:`repro.exec.plans.PROJECTION_PLAN`
the serial engine runs, just on a :class:`~repro.exec.YgmExecutor`: the
(page, time)-sorted corpus is cut into page-aligned shards
(:func:`repro.exec.plans.page_aligned_shards`), each rank maps the
windowed-pair kernel over its share, and the driver reduces the gathered
shard triples into ``C`` and ``P'`` — the paper's decomposition
("dividing up authors to be checked among several compute nodes", §2.4;
projection is page-parallel by Algorithm 1's outer loop).

Because every page is wholly contained in one shard, per-shard
deduplication is exact and the reduce is the plain triple union every
other variant uses.  Results are bit-identical to
:func:`repro.projection.project.project` (enforced by tests on both
backends).
"""

from __future__ import annotations

import numpy as np

from repro.exec.executors import YgmExecutor
from repro.exec.plans import PROJECTION_PLAN, page_aligned_shards
from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.projection.project import ProjectionResult, ci_from_reduction
from repro.projection.window import TimeWindow
from repro.ygm.world import YgmWorld

__all__ = ["project_distributed"]

# Shards per rank: >1 so uneven page sizes still balance across ranks.
_SHARDS_PER_RANK = 4


def project_distributed(
    btm: BipartiteTemporalMultigraph,
    window: TimeWindow,
    world: YgmWorld,
    pair_batch: int = 1_000_000,
) -> ProjectionResult:
    """Run Step 1 across the ranks of *world*.

    Examples
    --------
    >>> from repro.ygm import YgmWorld
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p", 0), ("b", "p", 30)]
    ... )
    >>> with YgmWorld(2) as world:
    ...     result = project_distributed(btm, TimeWindow(0, 60), world)
    >>> result.ci.edges.to_dict()
    {(0, 1): 1}
    """
    users, pages, times, _bounds = btm.page_sorted_view()

    shards = page_aligned_shards(
        users, pages, times, world.n_ranks * _SHARDS_PER_RANK
    )
    context = {
        "delta1": window.delta1,
        "delta2": window.delta2,
        "pair_batch": int(pair_batch),
        "n_users": btm.user_id_space,
    }
    red = YgmExecutor(world).run(PROJECTION_PLAN, shards, context)

    ci = ci_from_reduction(red, window, btm.user_names)
    return ProjectionResult(
        ci=ci,
        stats={
            "comments_scanned": btm.n_comments,
            "pages_visited": int(np.unique(pages).shape[0]),
            "pair_observations": red["pair_observations"],
            "ci_edges": ci.edges.n_edges,
            "ranks": world.n_ranks,
        },
    )
