"""Distributed projection on the YGM runtime (how the paper runs Step 1).

Pages are scattered across ranks in a :class:`~repro.ygm.DistBag`; each
rank runs the same vectorized windowed-pair kernel on its local pages and
merges pair weights into a :class:`~repro.ygm.DistMap` keyed by the author
pair, with the ``P'`` ledger accumulated in a second map.  Because every
page is processed whole on exactly one rank, per-page deduplication is
rank-local and the cross-rank reduction is a plain sum — the same
decomposition the paper uses ("dividing up authors to be checked among
several compute nodes", §2.4; projection is page-parallel by Algorithm 1's
outer loop).

Results are bit-identical to :func:`repro.projection.project.project`
(enforced by tests on both backends).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.graph.edgelist import EdgeList
from repro.projection.ci_graph import CommonInteractionGraph
from repro.projection.project import ProjectionResult, _windowed_pair_batches
from repro.projection.window import TimeWindow
from repro.ygm.containers.bag import DistBag
from repro.ygm.containers.counter import DistCounter
from repro.ygm.handlers import ygm_handler
from repro.ygm.world import YgmWorld

__all__ = ["project_distributed"]


@ygm_handler("repro.projection.page_kernel")
def _h_page_kernel(ctx, item, window_tuple, edge_cid, pprime_cid) -> None:
    """Per-page projection: runs at the rank holding the page record.

    ``item`` is ``(page_id, users, times)`` with times sorted ascending.
    Emits weight increments into the pair-weight counter and page counts
    into the ``P'`` counter via nested batched sends.
    """
    page_id, users, times = item
    window = TimeWindow(*window_tuple)
    pages = np.full(users.shape[0], page_id, dtype=np.int64)
    pair_keys: set[tuple[int, int]] = set()
    for pg, a, b, _raw in _windowed_pair_batches(
        users, pages, times, window, pair_batch=1_000_000
    ):
        pair_keys.update(zip(a.tolist(), b.tolist()))
    if not pair_keys:
        return
    # One page ⇒ every distinct pair contributes weight exactly 1, and
    # every participating author's P' grows by exactly 1.
    _counter_send(ctx, edge_cid, [(pair, 1) for pair in pair_keys])
    authors = {a for a, _ in pair_keys} | {b for _, b in pair_keys}
    _counter_send(ctx, pprime_cid, [(author, 1) for author in authors])


def _counter_send(ctx, cid: str, items: list) -> None:
    """Batch counter increments per destination rank (nested sends)."""
    from repro.ygm.partition import HashPartitioner

    part = HashPartitioner(ctx.n_ranks)
    per_rank: dict[int, list] = {}
    for key, amount in items:
        per_rank.setdefault(part.owner(key), []).append((key, amount))
    for rank, batch in per_rank.items():
        ctx.send(rank, cid, "ygm.counter.add_batch", batch)


def project_distributed(
    btm: BipartiteTemporalMultigraph,
    window: TimeWindow,
    world: YgmWorld,
) -> ProjectionResult:
    """Run Step 1 across the ranks of *world*.

    Examples
    --------
    >>> from repro.ygm import YgmWorld
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p", 0), ("b", "p", 30)]
    ... )
    >>> with YgmWorld(2) as world:
    ...     result = project_distributed(btm, TimeWindow(0, 60), world)
    >>> result.ci.edges.to_dict()
    {(0, 1): 1}
    """
    users, pages, times, bounds = btm.page_sorted_view()

    page_bag = DistBag(world)
    edge_counter = DistCounter(world)
    pprime_counter = DistCounter(world)

    records = []
    for i in range(bounds.shape[0] - 1):
        start, stop = int(bounds[i]), int(bounds[i + 1])
        records.append(
            (int(pages[start]), users[start:stop].copy(), times[start:stop].copy())
        )
    page_bag.async_insert_batch(records)
    world.barrier()

    page_bag.for_all(
        "repro.projection.page_kernel",
        (window.delta1, window.delta2),
        edge_counter.container_id,
        pprime_counter.container_id,
    )

    weights = edge_counter.to_dict()
    pprime = pprime_counter.to_dict()

    page_bag.release()
    edge_counter.release()
    pprime_counter.release()

    n_users = btm.user_id_space
    page_counts = np.zeros(n_users, dtype=np.int64)
    for author, count in pprime.items():
        page_counts[author] = count
    edges = EdgeList.from_weighted_dict(
        {(int(a), int(b)): int(w) for (a, b), w in weights.items()}
    ).accumulate()
    ci = CommonInteractionGraph(
        edges=edges,
        page_counts=page_counts,
        window=window,
        user_names=btm.user_names,
    )
    return ProjectionResult(
        ci=ci,
        stats={
            "comments_scanned": btm.n_comments,
            "pages_visited": len(records),
            "ci_edges": edges.n_edges,
            "ranks": world.n_ranks,
        },
    )
