"""Incremental projection — rolling-window updates without recomputation.

A monitoring deployment re-analyses the network as new comments arrive.
Re-projecting the whole month per update wastes the key structural fact
of Algorithm 1: the projection is a *per-page* computation, so only pages
that received new comments can change.

:class:`IncrementalProjector` keeps the distinct ``(page, x, y)``
observation triples (the quantity everything else reduces from) and, per
update, recomputes triples only for the touched pages, replacing their
old contribution.  The reduced CI graph is then rebuilt from the triple
store — exact, not approximate: equality with a from-scratch projection
over the concatenated corpus is asserted in tests after every update
pattern (appends, page-local edits, out-of-order arrivals).

For long-lived deployments (see :mod:`repro.serve`) the projector also
supports **time-based eviction** (:meth:`evict_before` drops comments
older than a cutoff and reprojects the affected pages) and **id-space
compaction** (:meth:`compact` rebuilds the interners over the live
corpus so steady-state memory tracks the live window, not everything
ever ingested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.kernels import cooccur_pairs, merge_triples
from repro.projection.ci_graph import CommonInteractionGraph
from repro.projection.project import reduce_triples_to_ci
from repro.projection.window import TimeWindow
from repro.util.ids import Interner

__all__ = ["CompactionReport", "EvictionReport", "IncrementalProjector"]


@dataclass(frozen=True)
class EvictionReport:
    """What one :meth:`IncrementalProjector.evict_before` call removed.

    Attributes
    ----------
    cutoff:
        Comments with ``created_utc < cutoff`` were dropped.
    evicted:
        One ``(user_id, page_id)`` per evicted comment (multiplicity
        preserved — a user's three old comments on a page yield three
        entries), so callers tracking per-user live incidence can
        decrement exactly.
    touched_pages:
        Pages that lost at least one comment (reprojected or removed).
    removed_pages:
        The subset of ``touched_pages`` left with no comments at all.
    """

    cutoff: int
    evicted: tuple[tuple[int, int], ...]
    touched_pages: frozenset[int]
    removed_pages: frozenset[int]

    @property
    def n_evicted(self) -> int:
        """Number of comments dropped."""
        return len(self.evicted)


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of one :meth:`IncrementalProjector.compact` call.

    ``user_map`` / ``page_map`` translate old ids to new ids (``-1`` for
    ids whose owner no longer appears in any live comment).  Both maps
    are **monotone** on surviving ids — relative order is preserved — so
    canonical orientations (``a < b``) and sorted iteration orders remain
    valid after remapping.
    """

    users_before: int
    users_after: int
    pages_before: int
    pages_after: int
    user_map: np.ndarray
    page_map: np.ndarray

    @property
    def reclaimed_users(self) -> int:
        """Interner rows dropped from the user id space."""
        return self.users_before - self.users_after

    @property
    def reclaimed_pages(self) -> int:
        """Interner rows dropped from the page id space."""
        return self.pages_before - self.pages_after


class IncrementalProjector:
    """Maintains a CI graph under streaming comment arrivals.

    Parameters
    ----------
    window:
        The projection window (fixed for the projector's lifetime).
    pair_batch:
        Candidate-pair memory budget per page recomputation.

    Examples
    --------
    >>> proj = IncrementalProjector(TimeWindow(0, 60))
    >>> proj.add_comments([("a", "p", 0), ("b", "p", 30)])
    1
    >>> proj.ci_graph().edges.to_dict()
    {(0, 1): 1}
    >>> proj.add_comments([("c", "p", 45)])      # page p is re-projected
    1
    >>> sorted(proj.ci_graph().edges.to_dict())
    [(0, 1), (0, 2), (1, 2)]
    """

    def __init__(
        self,
        window: TimeWindow,
        pair_batch: int = 4_000_000,
        user_names: Interner | None = None,
        page_names: Interner | None = None,
    ) -> None:
        self.window = window
        self.pair_batch = int(pair_batch)
        # Preassigned interners let a caller that already owns a global id
        # space (e.g. the out-of-core wrapper's pass-1 interner) feed
        # dense ids directly via ingest_dense.
        self.user_names = user_names if user_names is not None else Interner()
        self.page_names = page_names if page_names is not None else Interner()
        # Raw comments per page id (the page-local recompute input).
        self._comments: dict[int, list[tuple[int, int]]] = {}
        # Current distinct (page, a, b) triples per page id.
        self._triples: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Raw in-window pair observations per page id (size accounting).
        self._raw_pairs: dict[int, int] = {}
        self._dirty = False

    # -- updates ----------------------------------------------------------------
    def add_comments(self, comments) -> int:
        """Ingest ``(author, page, created_utc)`` triples; returns the
        number of *pages* whose projection was recomputed."""
        touched: set[int] = set()
        for author, page, created in comments:
            uid = self.user_names.intern(author)
            pid = self.page_names.intern(page)
            self._comments.setdefault(pid, []).append((uid, int(created)))
            touched.add(pid)
        for pid in touched:
            self._reproject_page(pid)
        if touched:
            self._dirty = True
        return len(touched)

    def ingest_dense(
        self, users: np.ndarray, pages: np.ndarray, times: np.ndarray
    ) -> int:
        """Ingest rows whose ids are *already dense* in this projector's
        id spaces (e.g. re-read from a spill file written against the
        same interners).  Returns the number of pages recomputed."""
        touched: set[int] = set()
        for uid, pid, t in zip(
            users.tolist(), pages.tolist(), times.tolist()
        ):
            self._comments.setdefault(pid, []).append((uid, t))
            touched.add(pid)
        for pid in touched:
            self._reproject_page(pid)
        if touched:
            self._dirty = True
        return len(touched)

    def release_comments(self, pids) -> int:
        """Drop the raw comment rows of *pids*, keeping their triples.

        For pages guaranteed to receive no further comments (e.g. the
        page-disjoint partitions of the out-of-core wrapper), the raw
        rows are only needed for future recomputation — releasing them
        caps memory at the triple store.  A later append to a released
        page recomputes from the surviving (partial) rows and is the
        caller's bug, not this method's.  Returns rows dropped.
        """
        dropped = 0
        for pid in pids:
            rows = self._comments.get(pid)
            if rows:
                dropped += len(rows)
                self._comments[pid] = []
        return dropped

    def remove_page(self, page) -> bool:
        """Drop a page entirely (e.g. deleted thread); returns whether it
        existed."""
        pid = self.page_names.get(page)
        if pid is None or pid not in self._comments:
            return False
        del self._comments[pid]
        self._triples.pop(pid, None)
        self._raw_pairs.pop(pid, None)
        self._dirty = True
        return True

    def evict_before(self, cutoff: int) -> EvictionReport:
        """Drop every comment with ``created_utc < cutoff`` (sliding window).

        Pages that lose comments are reprojected from their surviving
        rows (the same per-page machinery appends use); pages left empty
        are removed outright.  The interners are *not* shrunk here —
        that is :meth:`compact`'s job — so ids stay stable across
        evictions.
        """
        cutoff = int(cutoff)
        evicted: list[tuple[int, int]] = []
        touched: set[int] = set()
        removed: set[int] = set()
        for pid in self.pages_with_comments_before(cutoff):
            rows = self._comments[pid]
            keep = [(u, t) for u, t in rows if t >= cutoff]
            evicted.extend((u, pid) for u, t in rows if t < cutoff)
            touched.add(pid)
            if keep:
                self._comments[pid] = keep
                self._reproject_page(pid)
            else:
                del self._comments[pid]
                self._triples.pop(pid, None)
                self._raw_pairs.pop(pid, None)
                removed.add(pid)
        if touched:
            self._dirty = True
        return EvictionReport(
            cutoff=cutoff,
            evicted=tuple(evicted),
            touched_pages=frozenset(touched),
            removed_pages=frozenset(removed),
        )

    def compact(self) -> CompactionReport:
        """Rebuild both interners over the live corpus only.

        Under sustained append/evict churn the interners (and the id
        spaces every dense array is sized by, e.g. ``P'``) grow with the
        *total* number of users and pages ever seen, not the live window
        — the classic slow leak of a long-running service.  Compaction
        remaps every surviving id onto a dense ``0..n-1`` space in old-id
        order (a monotone map: relative order, and hence every canonical
        ``a < b`` orientation, is preserved) and drops dead rows.

        Callers holding id-keyed state of their own must remap it with
        the returned :class:`CompactionReport` maps (or rebuild from the
        projector, as :class:`repro.serve.DetectionEngine` does).
        """
        users_before = len(self.user_names)
        pages_before = len(self.page_names)

        live_pids = sorted(self._comments)
        live_uids: set[int] = set()
        for rows in self._comments.values():
            live_uids.update(u for u, _t in rows)

        user_map = np.full(users_before, -1, dtype=np.int64)
        for new, old in enumerate(sorted(live_uids)):
            user_map[old] = new
        page_map = np.full(pages_before, -1, dtype=np.int64)
        for new, old in enumerate(live_pids):
            page_map[old] = new

        self.user_names = Interner(
            self.user_names.key_of(old) for old in sorted(live_uids)
        )
        self.page_names = Interner(
            self.page_names.key_of(old) for old in live_pids
        )
        self._comments = {
            int(page_map[pid]): [(int(user_map[u]), t) for u, t in rows]
            for pid, rows in self._comments.items()
        }
        self._triples = {
            int(page_map[pid]): (user_map[a], user_map[b])
            for pid, (a, b) in self._triples.items()
        }
        self._raw_pairs = {
            int(page_map[pid]): raw
            for pid, raw in self._raw_pairs.items()
            if page_map[pid] >= 0
        }
        return CompactionReport(
            users_before=users_before,
            users_after=len(self.user_names),
            pages_before=pages_before,
            pages_after=len(self.page_names),
            user_map=user_map,
            page_map=page_map,
        )

    def _reproject_page(self, pid: int) -> None:
        rows = self._comments[pid]
        rows.sort(key=lambda r: r[1])
        users = np.asarray([u for u, _t in rows], dtype=np.int64)
        times = np.asarray([t for _u, t in rows], dtype=np.int64)
        pages = np.full(users.shape[0], pid, dtype=np.int64)
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        raw = 0
        for pg, a, b, n_raw in cooccur_pairs(
            users, pages, times, self.window, self.pair_batch
        ):
            parts.append((pg, a, b))
            raw += n_raw
        if parts:
            _pg, a, b = merge_triples(parts)
            self._triples[pid] = (a, b)
            self._raw_pairs[pid] = raw
        else:
            self._triples.pop(pid, None)
            self._raw_pairs.pop(pid, None)

    # -- reads ----------------------------------------------------------------------
    def pages_with_comments_before(self, cutoff: int) -> list[int]:
        """Page ids holding at least one comment older than *cutoff*.

        This is the eviction candidate set — callers snapshotting
        per-page state before an :meth:`evict_before` (to diff against
        the post-eviction state) ask for it first.
        """
        cutoff = int(cutoff)
        return [
            pid
            for pid, rows in self._comments.items()
            if any(t < cutoff for _u, t in rows)
        ]

    def raw_pair_observations(self) -> int:
        """Total raw in-window pair observations across live pages —
        the same count :func:`repro.projection.project.project` reports
        as ``stats["pair_observations"]``."""
        return sum(self._raw_pairs.values())

    def triples_of(self, pid: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Current distinct ``(lo, hi)`` user-pair arrays of one page id
        (``None`` when the page produced no in-window pair)."""
        return self._triples.get(pid)

    def ci_graph(self) -> CommonInteractionGraph:
        """The current common interaction graph (rebuilt from triples)."""
        if self._triples:
            pages = np.concatenate(
                [
                    np.full(a.shape[0], pid, dtype=np.int64)
                    for pid, (a, _b) in sorted(self._triples.items())
                ]
            )
            a = np.concatenate(
                [a for _pid, (a, _b) in sorted(self._triples.items())]
            )
            b = np.concatenate(
                [b for _pid, (_a, b) in sorted(self._triples.items())]
            )
        else:
            pages = a = b = np.empty(0, dtype=np.int64)
        return reduce_triples_to_ci(
            pages, a, b, len(self.user_names), self.window, self.user_names
        )

    def to_btm(self) -> BipartiteTemporalMultigraph:
        """The full ingested corpus as a BTM (for Steps 2–3 / oracles)."""
        users: list[int] = []
        pages: list[int] = []
        times: list[int] = []
        for pid, rows in self._comments.items():
            for uid, t in rows:
                users.append(uid)
                pages.append(pid)
                times.append(t)
        return BipartiteTemporalMultigraph(
            np.asarray(users, dtype=np.int64),
            np.asarray(pages, dtype=np.int64),
            np.asarray(times, dtype=np.int64),
            self.user_names,
            self.page_names,
        )

    def memory_stats(self) -> dict[str, int]:
        """Live-vs-interned accounting for leak detection.

        ``interned_users - live_users`` (and the page analogue) is the
        churn debt compaction would reclaim; the regression tests assert
        it stays bounded under long append/evict cycles when compaction
        runs.
        """
        live_uids: set[int] = set()
        for rows in self._comments.values():
            live_uids.update(u for u, _t in rows)
        return {
            "interned_users": len(self.user_names),
            "live_users": len(live_uids),
            "interned_pages": len(self.page_names),
            "live_pages": len(self._comments),
            "comments": self.n_comments,
            "triple_rows": sum(
                a.shape[0] for a, _b in self._triples.values()
            ),
        }

    @property
    def n_pages(self) -> int:
        """Pages ingested so far."""
        return len(self._comments)

    @property
    def n_comments(self) -> int:
        """Comments ingested so far."""
        return sum(len(rows) for rows in self._comments.values())
