"""Incremental projection — rolling-window updates without recomputation.

A monitoring deployment re-analyses the network as new comments arrive.
Re-projecting the whole month per update wastes the key structural fact
of Algorithm 1: the projection is a *per-page* computation, so only pages
that received new comments can change.

:class:`IncrementalProjector` keeps the distinct ``(page, x, y)``
observation triples (the quantity everything else reduces from) and, per
update, recomputes triples only for the touched pages, replacing their
old contribution.  The reduced CI graph is then rebuilt from the triple
store — exact, not approximate: equality with a from-scratch projection
over the concatenated corpus is asserted in tests after every update
pattern (appends, page-local edits, out-of-order arrivals).
"""

from __future__ import annotations

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.projection.ci_graph import CommonInteractionGraph
from repro.projection.project import (
    _dedup_triples,
    _windowed_pair_batches,
    reduce_triples_to_ci,
)
from repro.projection.window import TimeWindow
from repro.util.ids import Interner

__all__ = ["IncrementalProjector"]


class IncrementalProjector:
    """Maintains a CI graph under streaming comment arrivals.

    Parameters
    ----------
    window:
        The projection window (fixed for the projector's lifetime).
    pair_batch:
        Candidate-pair memory budget per page recomputation.

    Examples
    --------
    >>> proj = IncrementalProjector(TimeWindow(0, 60))
    >>> proj.add_comments([("a", "p", 0), ("b", "p", 30)])
    >>> proj.ci_graph().edges.to_dict()
    {(0, 1): 1}
    >>> proj.add_comments([("c", "p", 45)])      # page p is re-projected
    >>> sorted(proj.ci_graph().edges.to_dict())
    [(0, 1), (0, 2), (1, 2)]
    """

    def __init__(self, window: TimeWindow, pair_batch: int = 4_000_000) -> None:
        self.window = window
        self.pair_batch = int(pair_batch)
        self.user_names = Interner()
        self.page_names = Interner()
        # Raw comments per page id (the page-local recompute input).
        self._comments: dict[int, list[tuple[int, int]]] = {}
        # Current distinct (page, a, b) triples per page id.
        self._triples: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._dirty = False

    # -- updates ----------------------------------------------------------------
    def add_comments(self, comments) -> int:
        """Ingest ``(author, page, created_utc)`` triples; returns the
        number of *pages* whose projection was recomputed."""
        touched: set[int] = set()
        for author, page, created in comments:
            uid = self.user_names.intern(author)
            pid = self.page_names.intern(page)
            self._comments.setdefault(pid, []).append((uid, int(created)))
            touched.add(pid)
        for pid in touched:
            self._reproject_page(pid)
        if touched:
            self._dirty = True
        return len(touched)

    def remove_page(self, page) -> bool:
        """Drop a page entirely (e.g. deleted thread); returns whether it
        existed."""
        pid = self.page_names.get(page)
        if pid is None or pid not in self._comments:
            return False
        del self._comments[pid]
        self._triples.pop(pid, None)
        self._dirty = True
        return True

    def _reproject_page(self, pid: int) -> None:
        rows = self._comments[pid]
        rows.sort(key=lambda r: r[1])
        users = np.asarray([u for u, _t in rows], dtype=np.int64)
        times = np.asarray([t for _u, t in rows], dtype=np.int64)
        pages = np.full(users.shape[0], pid, dtype=np.int64)
        parts_a: list[np.ndarray] = []
        parts_b: list[np.ndarray] = []
        for _pg, a, b, _raw in _windowed_pair_batches(
            users, pages, times, self.window, self.pair_batch
        ):
            parts_a.append(a)
            parts_b.append(b)
        if parts_a:
            pg = np.full(sum(a.shape[0] for a in parts_a), pid, dtype=np.int64)
            _pg, a, b = _dedup_triples(
                pg, np.concatenate(parts_a), np.concatenate(parts_b)
            )
            self._triples[pid] = (a, b)
        else:
            self._triples.pop(pid, None)

    # -- reads ----------------------------------------------------------------------
    def ci_graph(self) -> CommonInteractionGraph:
        """The current common interaction graph (rebuilt from triples)."""
        if self._triples:
            pages = np.concatenate(
                [
                    np.full(a.shape[0], pid, dtype=np.int64)
                    for pid, (a, _b) in sorted(self._triples.items())
                ]
            )
            a = np.concatenate(
                [a for _pid, (a, _b) in sorted(self._triples.items())]
            )
            b = np.concatenate(
                [b for _pid, (_a, b) in sorted(self._triples.items())]
            )
        else:
            pages = a = b = np.empty(0, dtype=np.int64)
        return reduce_triples_to_ci(
            pages, a, b, len(self.user_names), self.window, self.user_names
        )

    def to_btm(self) -> BipartiteTemporalMultigraph:
        """The full ingested corpus as a BTM (for Steps 2–3 / oracles)."""
        users: list[int] = []
        pages: list[int] = []
        times: list[int] = []
        for pid, rows in self._comments.items():
            for uid, t in rows:
                users.append(uid)
                pages.append(pid)
                times.append(t)
        return BipartiteTemporalMultigraph(
            np.asarray(users, dtype=np.int64),
            np.asarray(pages, dtype=np.int64),
            np.asarray(times, dtype=np.int64),
            self.user_names,
            self.page_names,
        )

    @property
    def n_pages(self) -> int:
        """Pages ingested so far."""
        return len(self._comments)

    @property
    def n_comments(self) -> int:
        """Comments ingested so far."""
        return sum(len(rows) for rows in self._comments.values())
