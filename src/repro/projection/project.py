"""Algorithm 1 — projecting B to the common interaction graph C.

Two engines:

- :func:`project_reference` transcribes the paper's Algorithm 1 verbatim
  (dict-of-lists, per-page double loop, ``S_I``/``S_P'`` sets).  It is
  O(Σ k_p²) in Python and exists as the correctness oracle.
- :func:`project` is the production engine.  It sorts all comments by
  ``(page, time)`` once, then finds every in-window pair with a *global*
  vectorized two-pointer: comment *i*'s window mates are the contiguous
  index range ``searchsorted(key, key_i + δ1) .. searchsorted(key,
  key_i + δ2)`` where ``key = page_run * STRIDE + rebased_time`` encodes
  page and time into one monotone int64 (the stride is wide enough that a
  window can never bleed into the next page's run, and the encoding is
  guarded against int64 wraparound — see :func:`_window_bounds` and
  :mod:`repro.util.keys`).  Pair explosion is
  bounded by processing rows in batches of at most ``pair_batch``
  candidate pairs (the memory-vs-window trade-off of paper §2.2/§3).

Both return the same :class:`ProjectionResult`; equality is enforced by
unit and property tests.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.graph.edgelist import EdgeList
from repro.projection.ci_graph import CommonInteractionGraph
from repro.projection.window import TimeWindow
from repro.util.grouping import group_boundaries, unique_pair_weights
from repro.util.keys import INT64_MAX, encode_strided, strided_key_fits
from repro.util.timers import StageTimings

__all__ = [
    "project",
    "project_reference",
    "ProjectionResult",
    "estimate_pair_volume",
]


@dataclass
class ProjectionResult:
    """Output of Step 1.

    Attributes
    ----------
    ci:
        The common interaction graph ``C = (U, I, w')`` plus the ``P'``
        page-count ledger.
    triples:
        Optional ``(page, lo_user, hi_user)`` arrays of the distinct
        per-page author pairs behind every edge weight — retained when
        ``keep_triples=True`` so the exact bucket merge can union them.
    stats:
        Size accounting: comments scanned, pages visited, raw in-window
        pair observations, distinct per-page pairs, CI edges.
    timings:
        Per-stage wall-clock ledger.
    """

    ci: CommonInteractionGraph
    triples: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
    stats: dict[str, int] = field(default_factory=dict)
    timings: StageTimings = field(default_factory=StageTimings)


# ---------------------------------------------------------------------------
# Reference engine (Algorithm 1, verbatim)
# ---------------------------------------------------------------------------


def project_reference(
    btm: BipartiteTemporalMultigraph, window: TimeWindow
) -> ProjectionResult:
    """Line-by-line Algorithm 1: the slow, obviously correct oracle."""
    by_page: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for u, p, t in zip(btm.users, btm.pages, btm.times):
        by_page[int(p)].append((int(t), int(u)))

    weights: dict[tuple[int, int], int] = defaultdict(int)
    page_counts: dict[int, int] = defaultdict(int)
    pair_observations = 0
    for page, comments in by_page.items():
        comments.sort()
        s_i: set[tuple[int, int]] = set()
        k = len(comments)
        for i in range(k):
            tx, x = comments[i]
            for j in range(k):
                if j == i:
                    continue
                ty, y = comments[j]
                if ty < tx:
                    continue
                if window.delta1 <= ty - tx <= window.delta2 and x != y:
                    s_i.add((min(x, y), max(x, y)))
                    pair_observations += 1
        s_pprime: set[int] = set()
        for x, y in s_i:
            s_pprime.add(x)
            s_pprime.add(y)
            weights[(x, y)] += 1
        for x in s_pprime:
            page_counts[x] += 1

    n_users = btm.user_id_space
    pc = np.zeros(n_users, dtype=np.int64)
    for user, count in page_counts.items():
        pc[user] = count
    edges = EdgeList.from_weighted_dict(dict(weights))
    ci = CommonInteractionGraph(
        edges=edges.accumulate(),
        page_counts=pc,
        window=window,
        user_names=btm.user_names,
    )
    return ProjectionResult(
        ci=ci,
        stats={
            "comments_scanned": btm.n_comments,
            "pages_visited": len(by_page),
            "pair_observations": pair_observations,
            # Each unit of weight is one distinct (page, pair) observation.
            "distinct_page_pairs": int(sum(weights.values())),
            "ci_edges": edges.accumulate().n_edges,
        },
    )


# ---------------------------------------------------------------------------
# Vectorized production engine
# ---------------------------------------------------------------------------


def _dedup_triples(
    pg: np.ndarray, a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate ``(page, a, b)`` triples (a < b assumed), sorted output."""
    if pg.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    order = np.lexsort((b, a, pg))
    pg, a, b = pg[order], a[order], b[order]
    keep = np.empty(pg.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = (pg[1:] != pg[:-1]) | (a[1:] != a[:-1]) | (b[1:] != b[:-1])
    return pg[keep], a[keep], b[keep]


def _window_bounds(
    pages: np.ndarray, times: np.ndarray, window: TimeWindow
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row candidate index ranges ``[lo, hi)`` of in-window mates.

    The single home of the windowed two-pointer: input arrays must be
    sorted by ``(page, time)``; row *i*'s window mates are the contiguous
    range ``lo[i]:hi[i]`` (which still contains *i* itself when
    ``delta1 == 0`` — callers mask it out).

    Times are rebased per page run, so the key stride is the largest
    *within-page* time span (not the corpus span), and the combined
    ``run * stride + time`` key is guarded against int64 overflow: when
    even the rebased key space would wrap (e.g. nanosecond timestamps over
    many pages), the bounds are computed per run with plain searchsorted
    instead of wrapping silently.
    """
    n = times.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    bounds = group_boundaries(pages)
    run_sizes = np.diff(bounds)
    n_runs = run_sizes.shape[0]
    run_index = np.repeat(np.arange(n_runs, dtype=np.int64), run_sizes)
    tb = times - times[bounds[:-1]][run_index]
    # Python-int stride: the guard below must see the true product.
    stride = int(tb.max()) + window.delta2 + 2
    if stride > INT64_MAX:
        raise OverflowError(
            "per-page time span + delta2 exceeds int64; the window is "
            "unrepresentable at this time resolution"
        )
    if strided_key_fits(n_runs, stride):
        key = encode_strided(run_index, stride, tb)
        lo = np.searchsorted(key, key + window.delta1, side="left")
        hi = np.searchsorted(key, key + window.delta2, side="right")
        return lo, hi
    # Guarded fallback: per-run searchsorted on the rebased times.  Slower
    # (one Python iteration per page) but exact for any int64 input.
    lo = np.empty(n, dtype=np.int64)
    hi = np.empty(n, dtype=np.int64)
    for r in range(n_runs):
        start, stop = int(bounds[r]), int(bounds[r + 1])
        ts = tb[start:stop]
        lo[start:stop] = start + np.searchsorted(
            ts, ts + window.delta1, side="left"
        )
        hi[start:stop] = start + np.searchsorted(
            ts, ts + window.delta2, side="right"
        )
    return lo, hi


def _windowed_pair_batches(
    users: np.ndarray,
    pages: np.ndarray,
    times: np.ndarray,
    window: TimeWindow,
    pair_batch: int,
):
    """Yield deduplicated ``(page, lo, hi)`` triple batches plus raw counts.

    Input arrays must be sorted by ``(page, time)``.  Yields tuples
    ``(pg, a, b, n_raw_pairs)``; batches may repeat triples across batch
    boundaries (the caller deduplicates globally).
    """
    n = users.shape[0]
    if n == 0:
        return
    lo, hi = _window_bounds(pages, times, window)
    counts = hi - lo
    # Comment i itself sits inside its own window iff delta1 == 0; the
    # row/col mask below removes it, so counts here are upper bounds only.
    cum = np.concatenate(([0], np.cumsum(counts)))
    start_row = 0
    while start_row < n:
        # Grow the row range until the candidate-pair budget is hit.
        stop_row = int(
            np.searchsorted(cum, cum[start_row] + max(pair_batch, 1), side="left")
        )
        stop_row = max(stop_row, start_row + 1)
        stop_row = min(stop_row, n)
        batch_counts = counts[start_row:stop_row]
        batch_total = int(cum[stop_row] - cum[start_row])
        if batch_total == 0:
            start_row = stop_row
            continue
        rows = np.repeat(
            np.arange(start_row, stop_row, dtype=np.int64), batch_counts
        )
        offsets = (
            np.arange(batch_total, dtype=np.int64)
            - np.repeat(cum[start_row:stop_row] - cum[start_row], batch_counts)
        )
        cols = lo[rows] + offsets
        mask = (cols != rows) & (users[rows] != users[cols])
        ux = users[rows[mask]]
        uy = users[cols[mask]]
        pgc = pages[rows[mask]]
        a = np.minimum(ux, uy)
        b = np.maximum(ux, uy)
        yield (*_dedup_triples(pgc, a, b), int(mask.sum()))
        start_row = stop_row


def project(
    btm: BipartiteTemporalMultigraph,
    window: TimeWindow,
    pair_batch: int = 4_000_000,
    keep_triples: bool = False,
) -> ProjectionResult:
    """Vectorized Algorithm 1 (see module docstring).

    Parameters
    ----------
    btm:
        The bipartite temporal multigraph to project.
    window:
        The delay window ``(δ1, δ2)``.
    pair_batch:
        Peak number of candidate pairs materialized at once; the
        memory/throughput knob (paper §3's "much greater space to store in
        memory" concern).
    keep_triples:
        Retain the distinct ``(page, x, y)`` observations in the result
        (needed by the exact bucket merge and some ablations).

    Examples
    --------
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p", 0), ("b", "p", 30), ("c", "p", 300)]
    ... )
    >>> result = project(btm, TimeWindow(0, 60))
    >>> result.ci.edges.to_dict()
    {(0, 1): 1}
    """
    timings = StageTimings()
    with timings.stage("sort"):
        users, pages, times, _bounds = btm.page_sorted_view()

    triple_parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    pair_observations = 0
    with timings.stage("windowed_pairs"):
        for pg, a, b, raw in _windowed_pair_batches(
            users, pages, times, window, pair_batch
        ):
            triple_parts.append((pg, a, b))
            pair_observations += raw

    with timings.stage("dedup"):
        if triple_parts:
            pg = np.concatenate([t[0] for t in triple_parts])
            a = np.concatenate([t[1] for t in triple_parts])
            b = np.concatenate([t[2] for t in triple_parts])
            pg, a, b = _dedup_triples(pg, a, b)
        else:
            pg = a = b = np.empty(0, dtype=np.int64)

    n_users = btm.user_id_space
    with timings.stage("reduce"):
        ci = reduce_triples_to_ci(pg, a, b, n_users, window, btm.user_names)

    result = ProjectionResult(
        ci=ci,
        triples=(pg, a, b) if keep_triples else None,
        stats={
            "comments_scanned": btm.n_comments,
            "pages_visited": int(np.unique(pages).shape[0]),
            "pair_observations": pair_observations,
            "distinct_page_pairs": int(pg.shape[0]),
            "ci_edges": ci.edges.n_edges,
        },
        timings=timings,
    )
    return result


def estimate_pair_volume(
    btm: BipartiteTemporalMultigraph, window: TimeWindow
) -> int:
    """Upper bound on the candidate pairs Algorithm 1 materializes.

    Runs only the two searchsorted passes of the windowed two-pointer —
    no pair arrays are built — so a caller can predict the memory and
    compute cost of a window *before* committing to the projection (the
    parameter-selection question the paper leaves open, §3.2.3/§4.3).
    The count includes each comment's self-window hit when ``δ1 = 0``
    and same-author pairs, hence "upper bound".
    """
    users, pages, times, _bounds = btm.page_sorted_view()
    if users.shape[0] == 0:
        return 0
    lo, hi = _window_bounds(pages, times, window)
    return int((hi - lo).sum())


def reduce_triples_to_ci(
    pg: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    n_users: int,
    window: TimeWindow,
    user_names=None,
) -> CommonInteractionGraph:
    """Fold distinct ``(page, x, y)`` observations into ``C`` and ``P'``.

    Each triple is one page where the pair co-interacted inside the
    window, so ``w'_{xy}`` is the triple count per pair (eq. 5) and
    ``P'_x`` is the number of distinct pages over triples touching *x*
    (eq. 6).
    """
    ua, ub, w = unique_pair_weights(a, b)
    edges = EdgeList.__new__(EdgeList)
    edges.src, edges.dst, edges.weight = ua, ub, w

    page_counts = np.zeros(n_users, dtype=np.int64)
    if pg.shape[0]:
        pu = np.concatenate((pg, pg))
        uu = np.concatenate((a, b))
        dp, du, _ = unique_pair_weights(pu, uu)
        np.add.at(page_counts, du, 1)
    return CommonInteractionGraph(
        edges=edges, page_counts=page_counts, window=window, user_names=user_names
    )
