"""Algorithm 1 — projecting B to the common interaction graph C.

Two engines, both thin orchestration over :mod:`repro.kernels`:

- :func:`project_reference` runs the paper's Algorithm 1 through the
  kernel layer's *reference twins* (:func:`repro.kernels.cooccur_pairs_reference`
  is the verbatim per-page double loop, formerly this module's own body).
  It is O(Σ k_p²) in Python and exists as the correctness oracle.
- :func:`project` is the production engine: it sorts comments by
  ``(page, time)`` once and executes :data:`repro.exec.plans.PROJECTION_PLAN`
  on a :class:`~repro.exec.SerialExecutor` — the windowed two-pointer
  (:func:`repro.kernels.window_bounds`, formerly a private helper of
  this module), batched pair materialization
  (:func:`repro.kernels.cooccur_pairs`, bounded by ``pair_batch``
  candidate pairs, the memory-vs-window trade-off of paper §2.2/§3), and
  the eq. 5/6 reductions (:func:`repro.kernels.pair_weights`,
  :func:`repro.kernels.pair_ledger`) all live in the kernel layer.  The
  distributed engine runs the *same plan* on a
  :class:`~repro.exec.YgmExecutor` (see
  :mod:`repro.projection.distributed`).

Both return the same :class:`ProjectionResult`; equality is enforced by
unit and property tests plus the cross-engine parity harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exec.executors import SerialExecutor
from repro.exec.plans import (
    PROJECTION_PLAN,
    PROJECTION_ROWS_PER_SECOND,
    adaptive_shard_count,
    page_aligned_shards,
)
from repro.graph.bipartite import BipartiteTemporalMultigraph
from repro.graph.edgelist import EdgeList
from repro.kernels import (
    cooccur_pairs_reference,
    pair_ledger,
    pair_ledger_reference,
    pair_weights,
    pair_weights_reference,
    window_bounds,
)
from repro.projection.ci_graph import CommonInteractionGraph
from repro.projection.window import TimeWindow
from repro.util.timers import StageTimings

__all__ = [
    "project",
    "project_reference",
    "ProjectionResult",
    "estimate_pair_volume",
    "ci_from_reduction",
]


@dataclass
class ProjectionResult:
    """Output of Step 1.

    Attributes
    ----------
    ci:
        The common interaction graph ``C = (U, I, w')`` plus the ``P'``
        page-count ledger.
    triples:
        Optional ``(page, lo_user, hi_user)`` arrays of the distinct
        per-page author pairs behind every edge weight — retained when
        ``keep_triples=True`` so the exact bucket merge can union them.
    stats:
        Size accounting: comments scanned, pages visited, raw in-window
        pair observations, distinct per-page pairs, CI edges.
    timings:
        Per-stage wall-clock ledger.
    """

    ci: CommonInteractionGraph
    triples: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
    stats: dict[str, int] = field(default_factory=dict)
    timings: StageTimings = field(default_factory=StageTimings)


def _edges_from_arrays(
    ua: np.ndarray, ub: np.ndarray, w: np.ndarray
) -> EdgeList:
    """Wrap already-canonical (sorted, distinct) pair arrays as an EdgeList."""
    edges = EdgeList.__new__(EdgeList)
    edges.src, edges.dst, edges.weight = ua, ub, w
    return edges


def ci_from_reduction(
    reduction: dict,
    window: TimeWindow,
    user_names=None,
) -> CommonInteractionGraph:
    """Wrap a :func:`repro.exec.plans.project_reduce` output into ``C``."""
    return CommonInteractionGraph(
        edges=_edges_from_arrays(
            reduction["ua"], reduction["ub"], reduction["w"]
        ),
        page_counts=reduction["page_counts"],
        window=window,
        user_names=user_names,
    )


# ---------------------------------------------------------------------------
# Reference engine (Algorithm 1, via the kernel reference twins)
# ---------------------------------------------------------------------------


def project_reference(
    btm: BipartiteTemporalMultigraph, window: TimeWindow
) -> ProjectionResult:
    """Algorithm 1 through the slow, obviously correct kernel twins."""
    users, pages, times, _bounds = btm.page_sorted_view()
    pg, a, b, pair_observations = cooccur_pairs_reference(
        users, pages, times, window
    )
    n_users = btm.user_id_space
    ua, ub, w = pair_weights_reference(a, b)
    page_counts = pair_ledger_reference(pg, a, b, n_users)
    ci = CommonInteractionGraph(
        edges=_edges_from_arrays(ua, ub, w),
        page_counts=page_counts,
        window=window,
        user_names=btm.user_names,
    )
    return ProjectionResult(
        ci=ci,
        stats={
            "comments_scanned": btm.n_comments,
            "pages_visited": int(np.unique(pages).shape[0]),
            "pair_observations": pair_observations,
            # Each unit of weight is one distinct (page, pair) observation.
            "distinct_page_pairs": int(pg.shape[0]),
            "ci_edges": ci.edges.n_edges,
        },
    )


# ---------------------------------------------------------------------------
# Vectorized production engine
# ---------------------------------------------------------------------------


def project(
    btm: BipartiteTemporalMultigraph,
    window: TimeWindow,
    pair_batch: int = 4_000_000,
    keep_triples: bool = False,
    *,
    executor=None,
    n_shards: int | None = None,
) -> ProjectionResult:
    """Vectorized Algorithm 1 (see module docstring).

    Parameters
    ----------
    btm:
        The bipartite temporal multigraph to project.
    window:
        The delay window ``(δ1, δ2)``.
    pair_batch:
        Peak number of candidate pairs materialized at once; the
        memory/throughput knob (paper §3's "much greater space to store in
        memory" concern).
    keep_triples:
        Retain the distinct ``(page, x, y)`` observations in the result
        (needed by the exact bucket merge and some ablations).
    executor:
        Plan executor to run :data:`~repro.exec.plans.PROJECTION_PLAN`
        on; defaults to an in-process
        :class:`~repro.exec.SerialExecutor`.  Pass a
        :class:`~repro.exec.ParallelExecutor` for multi-core projection —
        page-aligned sharding keeps the reduction bit-identical.
    n_shards:
        Number of page-aligned shards to cut the comment stream into;
        defaults to adaptive sizing
        (:func:`~repro.exec.plans.adaptive_shard_count`: ~100 ms of
        work per shard, at least one per worker, 1 for serial).

    Examples
    --------
    >>> btm = BipartiteTemporalMultigraph.from_comments(
    ...     [("a", "p", 0), ("b", "p", 30), ("c", "p", 300)]
    ... )
    >>> result = project(btm, TimeWindow(0, 60))
    >>> result.ci.edges.to_dict()
    {(0, 1): 1}
    """
    timings = StageTimings()
    with timings.stage("sort"):
        users, pages, times, _bounds = btm.page_sorted_view()

    n_users = btm.user_id_space
    context = {
        "delta1": window.delta1,
        "delta2": window.delta2,
        "pair_batch": int(pair_batch),
        "n_users": n_users,
    }
    if executor is None:
        executor = SerialExecutor()
    if n_shards is None:
        n_shards = adaptive_shard_count(
            users.shape[0],
            getattr(executor, "n_workers", 1),
            PROJECTION_ROWS_PER_SECOND,
        )
    if users.shape[0] == 0:
        shards = []
    elif n_shards <= 1:
        shards = [(users, pages, times)]
    else:
        shards = page_aligned_shards(users, pages, times, n_shards)
    with timings.stage("plan"):
        red = executor.run(PROJECTION_PLAN, shards, context)

    with timings.stage("wrap"):
        ci = ci_from_reduction(red, window, btm.user_names)

    return ProjectionResult(
        ci=ci,
        triples=(red["pg"], red["a"], red["b"]) if keep_triples else None,
        stats={
            "comments_scanned": btm.n_comments,
            "pages_visited": int(np.unique(pages).shape[0]),
            "pair_observations": red["pair_observations"],
            "distinct_page_pairs": int(red["pg"].shape[0]),
            "ci_edges": ci.edges.n_edges,
        },
        timings=timings,
    )


def estimate_pair_volume(
    btm: BipartiteTemporalMultigraph, window: TimeWindow
) -> int:
    """Upper bound on the candidate pairs Algorithm 1 materializes.

    Runs only the two searchsorted passes of the windowed two-pointer
    (:func:`repro.kernels.window_bounds`) — no pair arrays are built — so
    a caller can predict the memory and compute cost of a window *before*
    committing to the projection (the parameter-selection question the
    paper leaves open, §3.2.3/§4.3).  The count includes each comment's
    self-window hit when ``δ1 = 0`` and same-author pairs, hence "upper
    bound".
    """
    users, pages, times, _bounds = btm.page_sorted_view()
    if users.shape[0] == 0:
        return 0
    lo, hi = window_bounds(pages, times, window)
    return int((hi - lo).sum())


def reduce_triples_to_ci(
    pg: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    n_users: int,
    window: TimeWindow,
    user_names=None,
) -> CommonInteractionGraph:
    """Fold distinct ``(page, x, y)`` observations into ``C`` and ``P'``.

    Each triple is one page where the pair co-interacted inside the
    window, so ``w'_{xy}`` is the triple count per pair (eq. 5, via
    :func:`repro.kernels.pair_weights`) and ``P'_x`` is the number of
    distinct pages over triples touching *x* (eq. 6, via
    :func:`repro.kernels.pair_ledger`).
    """
    ua, ub, w = pair_weights(a, b)
    page_counts = pair_ledger(pg, a, b, n_users)
    return CommonInteractionGraph(
        edges=_edges_from_arrays(ua, ub, w),
        page_counts=page_counts,
        window=window,
        user_names=user_names,
    )
