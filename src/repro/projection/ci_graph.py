"""The common interaction graph ``C = (U, I, w')`` with its ``P'`` ledger.

Wraps the projection output with the operations Steps 2–3 need:
thresholding, CSR conversion for the triangle survey, connected components
of the pruned graph (the paper's botnet "networks"), and the normalized
triangle score ``T(x, y, z)`` of eq. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import components_as_lists
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.projection.window import TimeWindow
from repro.util.ids import Interner

__all__ = ["CommonInteractionGraph"]


@dataclass
class CommonInteractionGraph:
    """Weighted author–author graph plus per-author page counts.

    Attributes
    ----------
    edges:
        Accumulated edge list; ``weight`` is ``w'`` (eq. 5).
    page_counts:
        ``P'_x`` per author id (eq. 6): the number of pages that created at
        least one projection edge incident to *x*.
    window:
        The ``(δ1, δ2)`` window that produced the graph.
    user_names:
        Optional interner for reporting author names.
    """

    edges: EdgeList
    page_counts: np.ndarray
    window: TimeWindow
    user_names: Interner | None = None

    def __post_init__(self) -> None:
        self.page_counts = np.asarray(self.page_counts, dtype=np.int64)
        if self.edges.n_edges and self.edges.max_vertex >= self.page_counts.shape[0]:
            raise ValueError(
                "page_counts shorter than the edge endpoint id space "
                f"({self.page_counts.shape[0]} <= {self.edges.max_vertex})"
            )

    # -- size accounting --------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of distinct author pairs with ``w' >= 1``."""
        return self.edges.n_edges

    @property
    def n_authors(self) -> int:
        """Authors participating in at least one projection edge."""
        return int((self.page_counts > 0).sum())

    @property
    def id_space(self) -> int:
        """Size of the author id space (isolated authors included)."""
        return int(self.page_counts.shape[0])

    def max_weight(self) -> int:
        """Largest ``w'`` in the graph (0 when empty)."""
        return int(self.edges.weight.max()) if self.n_edges else 0

    # -- derived forms -------------------------------------------------------------
    def threshold(self, min_weight: int) -> "CommonInteractionGraph":
        """Keep only edges with ``w' >= min_weight`` (``P'`` unchanged).

        ``P'`` is a property of the *projection*, not of the pruned view,
        so normalized scores stay comparable across thresholds.
        """
        return CommonInteractionGraph(
            edges=self.edges.threshold(min_weight),
            page_counts=self.page_counts,
            window=self.window,
            user_names=self.user_names,
        )

    def without_authors(self, author_ids) -> "CommonInteractionGraph":
        """Drop all edges incident to *author_ids* (refinement loop)."""
        return CommonInteractionGraph(
            edges=self.edges.without_vertices(author_ids),
            page_counts=self.page_counts,
            window=self.window,
            user_names=self.user_names,
        )

    def to_csr(self) -> CSRGraph:
        """CSR adjacency over the full author id space."""
        return CSRGraph.from_edgelist(self.edges, n_vertices=self.id_space)

    def components(self, min_size: int = 2) -> list[list[int]]:
        """Connected components of the (already thresholded) graph."""
        return components_as_lists(
            self.edges, min_size=min_size, n_vertices=self.id_space
        )

    # -- scores ------------------------------------------------------------------------
    def triangle_score(self, x: int, y: int, z: int) -> float:
        """``T(x, y, z)`` of eq. 7 for one triangle (edges must exist).

        Provided for spot checks; the triangle survey computes this in
        bulk without per-call CSR rebuilds.
        """
        csr = self.to_csr()
        weights = [
            csr.edge_weight(x, y),
            csr.edge_weight(y, z),
            csr.edge_weight(x, z),
        ]
        if any(w is None for w in weights):
            raise ValueError(f"({x}, {y}, {z}) is not a triangle in C")
        denom = int(
            self.page_counts[x] + self.page_counts[y] + self.page_counts[z]
        )
        if denom == 0:
            return 0.0
        return 3.0 * min(weights) / denom

    def author_name(self, author_id: int) -> str:
        """Platform name for an author id (falls back to ``user<id>``)."""
        if self.user_names is None:
            return f"user{author_id}"
        return str(self.user_names.key_of(author_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommonInteractionGraph(window={self.window}, "
            f"n_authors={self.n_authors}, n_edges={self.n_edges})"
        )
