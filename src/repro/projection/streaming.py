"""Out-of-core projection for corpora that exceed memory.

The paper processes months of 138 M comments by distributing over
compute nodes; the single-host analogue is external partitioning.
Algorithm 1's outer loop is *page-parallel*, so the corpus can be split
by page hash into spill partitions, each projected independently, and
the results reduced — the same decomposition
:func:`repro.projection.distributed.project_distributed` uses across
ranks, here across disk-backed partitions:

1. **Pass 1** stream the ndjson once, interning author names into one
   global id space and appending ``(user, page, time)`` rows to
   ``n_partitions`` spill files by page hash;
2. **Pass 2** feed one partition at a time into an
   :class:`~repro.projection.incremental.IncrementalProjector` sharing
   the pass-1 interners (:meth:`~IncrementalProjector.ingest_dense`),
   then :meth:`~IncrementalProjector.release_comments` the partition's
   raw rows — partitions are page-disjoint, so released pages never
   need recomputation and peak memory stays at one partition plus the
   projector's triple store.

The final CI graph is the projector's
(:meth:`~IncrementalProjector.ci_graph` reduces the triple store through
the same :mod:`repro.kernels` reductions every other engine uses);
equality with the in-memory engine is asserted in tests.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.projection.incremental import IncrementalProjector
from repro.projection.project import ProjectionResult
from repro.projection.window import TimeWindow
from repro.util.ids import Interner
from repro.util.timers import StageTimings
from repro.ygm.partition import HashPartitioner

__all__ = ["project_streaming"]

_ROW = struct.Struct("<qqq")  # (user_id, page_id, time)


def _spill_records(
    comments: Iterable[tuple[str, str, int]],
    spill_dir: Path,
    n_partitions: int,
) -> tuple[Interner, Interner, list[Path], int]:
    """Pass 1: hash-partition comments by page into binary spill files."""
    user_names = Interner()
    page_names = Interner()
    part = HashPartitioner(n_partitions)
    paths = [spill_dir / f"part_{i:03d}.bin" for i in range(n_partitions)]
    handles = [open(p, "wb") for p in paths]
    n_rows = 0
    try:
        for author, page, created in comments:
            uid = user_names.intern(author)
            pid = page_names.intern(page)
            handles[part.owner(pid)].write(_ROW.pack(uid, pid, int(created)))
            n_rows += 1
    finally:
        for fh in handles:
            fh.close()
    return user_names, page_names, paths, n_rows


def _load_partition(path: Path) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read one spill file back as (users, pages, times) arrays."""
    raw = np.fromfile(path, dtype=np.int64)
    if raw.size == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    rows = raw.reshape(-1, 3)
    return rows[:, 0].copy(), rows[:, 1].copy(), rows[:, 2].copy()


def project_streaming(
    comments: Iterable[tuple[str, str, int]],
    window: TimeWindow,
    spill_dir: str | Path,
    n_partitions: int = 8,
    pair_batch: int = 4_000_000,
    keep_spill: bool = False,
) -> ProjectionResult:
    """Project a comment stream without holding it in memory.

    Parameters
    ----------
    comments:
        ``(author, page, created_utc)`` triples — e.g. a generator over a
        Pushshift ndjson file.
    window:
        The delay window ``(δ1, δ2)``.
    spill_dir:
        Scratch directory for partition files (created if missing).
    n_partitions:
        Page-hash partition count; peak memory ~ corpus size / partitions.
    keep_spill:
        Leave the spill files on disk for inspection.

    Examples
    --------
    >>> import tempfile
    >>> rows = [("a", "p", 0), ("b", "p", 30), ("a", "q", 5), ("b", "q", 10)]
    >>> with tempfile.TemporaryDirectory() as d:
    ...     result = project_streaming(rows, TimeWindow(0, 60), d, 2)
    >>> result.ci.edges.to_dict()
    {(0, 1): 2}
    """
    if n_partitions <= 0:
        raise ValueError(f"n_partitions must be positive, got {n_partitions}")
    spill_dir = Path(spill_dir)
    spill_dir.mkdir(parents=True, exist_ok=True)
    timings = StageTimings()

    with timings.stage("pass1.spill"):
        user_names, page_names, paths, n_rows = _spill_records(
            comments, spill_dir, n_partitions
        )

    proj = IncrementalProjector(
        window,
        pair_batch=pair_batch,
        user_names=user_names,
        page_names=page_names,
    )
    pages_visited = 0
    try:
        for path in paths:
            with timings.stage("pass2.project"):
                users, pages, times = _load_partition(path)
                if users.shape[0] == 0:
                    continue
                pages_visited += proj.ingest_dense(users, pages, times)
                # Partitions are page-disjoint: rows of a finished
                # partition are never needed again, only its triples.
                proj.release_comments(np.unique(pages).tolist())
    finally:
        if not keep_spill:
            for path in paths:
                path.unlink(missing_ok=True)

    with timings.stage("merge"):
        ci = proj.ci_graph()

    return ProjectionResult(
        ci=ci,
        stats={
            "comments_scanned": n_rows,
            "pages_visited": pages_visited,
            "pair_observations": proj.raw_pair_observations(),
            "ci_edges": ci.edges.n_edges,
            "partitions": n_partitions,
        },
        timings=timings,
    )


def iter_ndjson_comments(path: str | Path) -> Iterator[tuple[str, str, int]]:
    """Stream ``(author, link_id, created_utc)`` triples from ndjson."""
    from repro.graph.io import read_comments_ndjson

    for rec in read_comments_ndjson(path):
        yield rec["author"], rec["link_id"], int(rec["created_utc"])
