"""Larger-group structure in the common interaction graph (§4.3).

The paper's Step 2 is limited to triangles — "there is no way of directly
assessing coordination for groups of more than 3 authors … finding and
enumerat[ing] the larger groups in the CI graph" is called out as future
work (§4.2–4.3).  This module adds the standard machinery for that:

- :func:`core_numbers` — k-core decomposition (each vertex's largest *k*
  such that it survives iterated pruning of degree-< k vertices), over a
  weight-thresholded view of the CI graph;
- :func:`k_core_groups` — the connected components of the k-core: direct
  candidate groups of size ≥ k+1 with guaranteed internal degree ≥ k,
  generalizing the triangle (the 2-core's smallest cycle) to arbitrarily
  large dense crews.

Both are cross-checked against networkx in tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.components import components_as_lists
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList

__all__ = ["core_numbers", "k_core_subgraph", "k_core_groups"]


def core_numbers(
    edges: EdgeList, min_edge_weight: int = 0, n_vertices: int | None = None
) -> np.ndarray:
    """Core number of every vertex (0 for isolated vertices).

    Parameters
    ----------
    edges:
        The CI graph's edge list.
    min_edge_weight:
        Edges lighter than this are ignored (the Step 2 thresholding
        applied before structural analysis).
    n_vertices:
        Size of the vertex id space.

    Examples
    --------
    >>> el = EdgeList([0, 0, 1, 0], [1, 2, 2, 3])   # triangle + pendant
    >>> core_numbers(el).tolist()
    [2, 2, 2, 1]
    """
    acc = edges.accumulate()
    if min_edge_weight > 0:
        acc = acc.threshold(min_edge_weight)
    if n_vertices is None:
        n_vertices = acc.max_vertex + 1
    n_vertices = int(max(n_vertices, 0))
    if acc.n_edges == 0 or n_vertices == 0:
        return np.zeros(n_vertices, dtype=np.int64)
    csr = CSRGraph.from_edgelist(acc, n_vertices=n_vertices)

    # Matula–Beck peeling with bucket queues (O(V + E)).
    degree = csr.degrees().copy()
    max_deg = int(degree.max())
    # bin_starts[d] = first position of degree-d vertices in `order`.
    counts = np.bincount(degree, minlength=max_deg + 1)
    bin_starts = np.concatenate(([0], np.cumsum(counts)))[:-1].copy()
    order = np.argsort(degree, kind="stable").astype(np.int64)
    position = np.empty(n_vertices, dtype=np.int64)
    position[order] = np.arange(n_vertices)

    core = degree.copy()
    for i in range(n_vertices):
        v = int(order[i])
        for u in csr.neighbors(v):
            u = int(u)
            if core[u] > core[v]:
                # Swap u toward the front of its degree bin, then shrink it.
                du = int(core[u])
                pu = int(position[u])
                pw = int(bin_starts[du])
                w = int(order[pw])
                if u != w:
                    order[pu], order[pw] = w, u
                    position[u], position[w] = pw, pu
                bin_starts[du] += 1
                core[u] -= 1
    return core.astype(np.int64)


def k_core_subgraph(
    edges: EdgeList, k: int, min_edge_weight: int = 0
) -> EdgeList:
    """Edges of the k-core (both endpoints with core number >= k)."""
    acc = edges.accumulate()
    if min_edge_weight > 0:
        acc = acc.threshold(min_edge_weight)
    if acc.n_edges == 0:
        return EdgeList.empty()
    core = core_numbers(acc)
    keep = (core[acc.src] >= k) & (core[acc.dst] >= k)
    out = EdgeList.__new__(EdgeList)
    out.src = acc.src[keep]
    out.dst = acc.dst[keep]
    out.weight = acc.weight[keep]
    return out


def k_core_groups(
    edges: EdgeList, k: int, min_edge_weight: int = 0
) -> list[list[int]]:
    """Connected components of the k-core, largest first.

    Every returned group has >= k+1 members each with >= k in-group
    co-interaction partners — the "larger groups of interest" the paper
    wants to hand to Step 3 directly (§4.3).

    Examples
    --------
    >>> el = EdgeList([0, 0, 1, 0], [1, 2, 2, 3])
    >>> k_core_groups(el, k=2)
    [[0, 1, 2]]
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    sub = k_core_subgraph(edges, k, min_edge_weight)
    return components_as_lists(sub, min_size=k + 1)
