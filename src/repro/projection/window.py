"""The temporal window ``(δ1, δ2)`` (paper §2.2).

A window selects pairs of comments on the same page whose time difference
``t(y) - t(x)`` (with ``t(y) >= t(x)``) lies in ``[δ1, δ2]``.  Narrow
windows target share-reshare bursts; wide windows capture slower
generation bots at quadratically growing cost — the trade-off the paper's
§3.2 window sweep explores.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimeWindow"]


@dataclass(frozen=True, order=True)
class TimeWindow:
    """A closed delay interval ``[delta1, delta2]`` in seconds.

    Invariant: ``delta2 >= delta1 >= 0``.  The paper's windows are always
    strictly wider (``delta2 > delta1``); the degenerate ``delta1 ==
    delta2`` form selects a single exact delay and exists so bucket
    partitions can carry a one-delay remainder.

    Examples
    --------
    >>> w = TimeWindow(0, 60)
    >>> w.contains(0), w.contains(60), w.contains(61)
    (True, True, False)
    >>> [str(b) for b in TimeWindow(0, 180).buckets(60)]
    ['(0s, 60s)', '(61s, 120s)', '(121s, 180s)']
    """

    delta1: int
    delta2: int

    def __post_init__(self) -> None:
        if self.delta1 < 0:
            raise ValueError(f"delta1 must be >= 0, got {self.delta1}")
        if self.delta2 < self.delta1:
            raise ValueError(
                f"delta2 ({self.delta2}) must be >= delta1 ({self.delta1})"
            )

    @property
    def width(self) -> int:
        """``delta2 - delta1``."""
        return self.delta2 - self.delta1

    def contains(self, dt: int) -> bool:
        """Whether a delay *dt* falls inside the window."""
        return self.delta1 <= dt <= self.delta2

    def covers(self, other: "TimeWindow") -> bool:
        """Whether every delay of *other* also falls inside this window."""
        return self.delta1 <= other.delta1 and other.delta2 <= self.delta2

    def buckets(self, width: int) -> list["TimeWindow"]:
        """Partition into consecutive sub-windows spanning ≤ *width* seconds.

        This is the paper's memory workaround: project each narrow bucket
        separately, then merge.  The paper writes the buckets as
        ``{(0,60s), (60s,120s), …, (59min,1hr)}`` — closed intervals
        sharing boundary points — but windows are *inclusive*, so a delay
        of exactly 60 s would be observed by both of the first two
        buckets.  The exact merge deduplicates the ``(page, x, y)``
        triples either way, yet the shared boundary silently double-counts
        ``pair_observations`` and inflates the naive ``merge="sum"``
        ablation beyond the documented page effect.  Buckets after the
        first therefore start one delay tick past the previous bucket's
        end: the buckets **partition** the integer delay space of the
        window, and every delay is observed by exactly one bucket.
        """
        if width <= 0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        out = [TimeWindow(self.delta1, min(self.delta1 + width, self.delta2))]
        lo = out[0].delta2
        while lo < self.delta2:
            hi = min(lo + width, self.delta2)
            out.append(TimeWindow(lo + 1, hi))
            lo = hi
        return out

    def __str__(self) -> str:
        return f"({self.delta1}s, {self.delta2}s)"
