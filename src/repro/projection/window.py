"""The temporal window ``(δ1, δ2)`` (paper §2.2).

A window selects pairs of comments on the same page whose time difference
``t(y) - t(x)`` (with ``t(y) >= t(x)``) lies in ``[δ1, δ2]``.  Narrow
windows target share-reshare bursts; wide windows capture slower
generation bots at quadratically growing cost — the trade-off the paper's
§3.2 window sweep explores.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimeWindow"]


@dataclass(frozen=True, order=True)
class TimeWindow:
    """A closed delay interval ``[delta1, delta2]`` in seconds.

    Invariant (from the paper): ``delta2 > delta1 >= 0``.

    Examples
    --------
    >>> w = TimeWindow(0, 60)
    >>> w.contains(0), w.contains(60), w.contains(61)
    (True, True, False)
    >>> [str(b) for b in TimeWindow(0, 180).buckets(60)]
    ['(0s, 60s)', '(60s, 120s)', '(120s, 180s)']
    """

    delta1: int
    delta2: int

    def __post_init__(self) -> None:
        if self.delta1 < 0:
            raise ValueError(f"delta1 must be >= 0, got {self.delta1}")
        if self.delta2 <= self.delta1:
            raise ValueError(
                f"delta2 ({self.delta2}) must exceed delta1 ({self.delta1})"
            )

    @property
    def width(self) -> int:
        """``delta2 - delta1``."""
        return self.delta2 - self.delta1

    def contains(self, dt: int) -> bool:
        """Whether a delay *dt* falls inside the window."""
        return self.delta1 <= dt <= self.delta2

    def buckets(self, width: int) -> list["TimeWindow"]:
        """Split into consecutive sub-windows of at most *width* seconds.

        This is the paper's memory workaround: project each narrow bucket
        separately, then merge (``{(0,60s), (60s,120s), …, (59min,1hr)}``).
        Buckets partition the *delay value space*: consecutive buckets
        share a boundary point, and the exact-merge in
        :mod:`repro.projection.buckets` deduplicates per-page pairs so a
        boundary delay counted by two buckets is not double counted.
        """
        if width <= 0:
            raise ValueError(f"bucket width must be > 0, got {width}")
        out: list[TimeWindow] = []
        lo = self.delta1
        while lo < self.delta2:
            hi = min(lo + width, self.delta2)
            out.append(TimeWindow(lo, hi))
            lo = hi
        return out

    def __str__(self) -> str:
        return f"({self.delta1}s, {self.delta2}s)"
