"""Step 1 — projecting the bipartite temporal multigraph (paper §2.2).

Given the BTM ``B`` and a time window ``(δ1, δ2)``, the projection emits
the **common interaction graph** ``C = (U, I, w')`` where ``w'_{xy}``
counts the pages on which authors *x* and *y* comment within the window of
each other (eq. 5), together with the per-author page-count ledger ``P'``
(eq. 6) that normalizes the triangle score ``T`` (eq. 7).

Three interchangeable engines implement Algorithm 1:

- :func:`~repro.projection.project.project` — the production engine: a
  fully vectorized global two-pointer over ``(page, time)``-sorted
  comments, chunked by pages to bound peak memory.
- :func:`~repro.projection.project.project_reference` — a line-by-line
  transcription of Algorithm 1 with Python dicts/sets; the correctness
  oracle for the vectorized engine.
- :func:`~repro.projection.distributed.project_distributed` — pages
  scattered across YGM ranks, pair weights merged through
  ``DistMap.async_reduce_batch`` (how the paper runs at cluster scale).

:mod:`~repro.projection.buckets` adds the paper's time-bucket workaround
(§3): a wide window computed as a union of narrow disjoint sub-windows.
"""

from repro.projection.window import TimeWindow
from repro.projection.project import (
    project,
    project_reference,
    ProjectionResult,
    estimate_pair_volume,
)
from repro.projection.ci_graph import CommonInteractionGraph
from repro.projection.buckets import project_bucketed
from repro.projection.distributed import project_distributed
from repro.projection.cores import core_numbers, k_core_groups, k_core_subgraph
from repro.projection.streaming import project_streaming
from repro.projection.incremental import IncrementalProjector

__all__ = [
    "TimeWindow",
    "project",
    "project_reference",
    "ProjectionResult",
    "estimate_pair_volume",
    "CommonInteractionGraph",
    "project_bucketed",
    "project_distributed",
    "core_numbers",
    "k_core_groups",
    "k_core_subgraph",
    "project_streaming",
    "IncrementalProjector",
]
